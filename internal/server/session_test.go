package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/result"
)

// postSession posts a raw payload to a session endpoint and decodes the
// response.
func postSession(t *testing.T, url, path string, payload any) (int, SolveResponse) {
	t.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	hresp, err := http.Post(url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var resp SolveResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		t.Fatalf("status %d with undecodable body: %v", hresp.StatusCode, err)
	}
	return hresp.StatusCode, resp
}

func deleteSession(t *testing.T, url, id string) (int, SolveResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url+"/v1/session/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var resp SolveResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		t.Fatalf("status %d with undecodable body: %v", hresp.StatusCode, err)
	}
	return hresp.StatusCode, resp
}

// mustCreate opens a session and returns its id.
func mustCreate(t *testing.T, url string, req SessionRequest) string {
	t.Helper()
	status, resp := postSession(t, url, "/v1/session", req)
	if status != result.StatusOK || resp.Session == "" {
		t.Fatalf("create: got %d session=%q error=%q", status, resp.Session, resp.Error)
	}
	return resp.Session
}

// TestSessionLifecycle drives one session through the full protocol:
// solve, push+add, pop, witness, close — checking verdicts, frame depth,
// and per-call stats deltas along the way.
func TestSessionLifecycle(t *testing.T) {
	_, ts := testService(t, Config{Workers: 1})
	id := mustCreate(t, ts.URL, SessionRequest{Formula: tinyTrue})

	status, resp := postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{Seq: 1})
	if status != result.StatusOK || resp.Verdict != "TRUE" || resp.Depth != 0 {
		t.Fatalf("seq 1: got %d %q depth=%d error=%q", status, resp.Verdict, resp.Depth, resp.Error)
	}
	if resp.Session != id || resp.Stats == nil {
		t.Fatalf("seq 1: session=%q stats=%v", resp.Session, resp.Stats)
	}

	// tinyTrue forces 1=true, 2=false; asserting literal -1 in a frame
	// flips the verdict, popping the frame restores it.
	status, resp = postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{
		Seq: 2, Ops: []SessionOp{{Op: "push"}, {Op: "add", Lits: []int{-1}}}})
	if status != result.StatusOK || resp.Verdict != "FALSE" || resp.Depth != 1 {
		t.Fatalf("seq 2: got %d %q depth=%d error=%q", status, resp.Verdict, resp.Depth, resp.Error)
	}
	status, resp = postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{
		Seq: 3, Ops: []SessionOp{{Op: "pop"}}, Witness: true})
	if status != result.StatusOK || resp.Verdict != "TRUE" || resp.Depth != 0 {
		t.Fatalf("seq 3: got %d %q depth=%d error=%q", status, resp.Verdict, resp.Depth, resp.Error)
	}
	if len(resp.Witness) != 2 || resp.Witness[0] != 1 || resp.Witness[1] != -2 {
		t.Fatalf("seq 3: witness %v, want [1 -2]", resp.Witness)
	}

	status, resp = deleteSession(t, ts.URL, id)
	if status != result.StatusOK || resp.Session != id {
		t.Fatalf("close: got %d %+v", status, resp)
	}
	if status, _ := postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{Seq: 4}); status != http.StatusNotFound {
		t.Fatalf("solve after close: got %d, want 404", status)
	}
	if status, _ := deleteSession(t, ts.URL, id); status != http.StatusNotFound {
		t.Fatalf("double close: got %d, want 404", status)
	}
}

// TestSessionSeqProtocol pins the idempotency contract: a retry of the
// last executed seq replays the recorded response (marked Replayed), any
// other out-of-order seq is rejected with 409, and failed ops still
// consume their seq (they may have partially applied).
func TestSessionSeqProtocol(t *testing.T) {
	_, ts := testService(t, Config{Workers: 1})
	id := mustCreate(t, ts.URL, SessionRequest{Formula: tinyTrue})

	status, first := postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{Seq: 1})
	if status != result.StatusOK || first.Verdict != "TRUE" {
		t.Fatalf("seq 1: got %d %q", status, first.Verdict)
	}
	status, replay := postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{Seq: 1})
	if status != result.StatusOK || replay.Verdict != "TRUE" || !replay.Replayed {
		t.Fatalf("seq 1 retry: got %d %q replayed=%v", status, replay.Verdict, replay.Replayed)
	}
	if first.Replayed {
		t.Fatal("first execution must not be marked replayed")
	}
	for _, seq := range []int64{0, 3, 7} {
		if status, resp := postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{Seq: seq}); status != http.StatusConflict {
			t.Fatalf("seq %d: got %d %q, want 409", seq, status, resp.Error)
		}
	}

	// A failing op consumes its seq: the 400 is recorded and replayable,
	// and the next seq continues from there.
	status, resp := postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{
		Seq: 2, Ops: []SessionOp{{Op: "pop"}}})
	if status != result.StatusBadRequest {
		t.Fatalf("pop at depth 0: got %d %q, want 400", status, resp.Error)
	}
	status, resp = postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{
		Seq: 2, Ops: []SessionOp{{Op: "pop"}}})
	if status != result.StatusBadRequest || !resp.Replayed {
		t.Fatalf("400 retry: got %d replayed=%v", status, resp.Replayed)
	}
	if status, resp := postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{Seq: 3}); status != result.StatusOK || resp.Verdict != "TRUE" {
		t.Fatalf("seq 3 after failed op: got %d %q", status, resp.Verdict)
	}
}

// TestSessionBadRequests sweeps the rejection paths: malformed ops,
// out-of-prefix literals, portfolio mode, bad JSON, and bogus ids.
func TestSessionBadRequests(t *testing.T) {
	_, ts := testService(t, Config{Workers: 1})

	if status, resp := postSession(t, ts.URL, "/v1/session", SessionRequest{Formula: tinyTrue, Mode: "portfolio"}); status != result.StatusBadRequest {
		t.Fatalf("portfolio session: got %d %q, want 400", status, resp.Error)
	}
	if status, _ := postSession(t, ts.URL, "/v1/session", SessionRequest{Formula: "p cnf zz"}); status != result.StatusBadRequest {
		t.Fatalf("bad formula: got %d, want 400", status)
	}
	if status, _ := postSession(t, ts.URL, "/v1/session/nope", SessionSolveRequest{Seq: 1}); status != http.StatusNotFound {
		t.Fatalf("bogus id: got %d, want 404", status)
	}
	if status, _ := postSession(t, ts.URL, "/v1/session/a/b", SessionSolveRequest{Seq: 1}); status != http.StatusNotFound {
		t.Fatalf("nested path: got %d, want 404", status)
	}

	id := mustCreate(t, ts.URL, SessionRequest{Formula: tinyTrue})
	cases := []struct {
		name string
		ops  []SessionOp
	}{
		{"unknown op", []SessionOp{{Op: "frobnicate"}}},
		{"push with lits", []SessionOp{{Op: "push", Lits: []int{1}}}},
		{"zero literal", []SessionOp{{Op: "add", Lits: []int{1, 0}}}},
		{"unbound variable", []SessionOp{{Op: "add", Lits: []int{99}}}},
		{"assume unbound", []SessionOp{{Op: "assume", Lits: []int{-77}}}},
	}
	for i, c := range cases {
		status, resp := postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{
			Seq: int64(i + 1), Ops: c.ops})
		if status != result.StatusBadRequest || resp.Error == "" {
			t.Fatalf("%s: got %d %q, want 400 with error", c.name, status, resp.Error)
		}
	}
}

// TestSessionEviction fills the store past MaxSessions and checks that
// the least-recently-used idle session is evicted to make room.
func TestSessionEviction(t *testing.T) {
	s, ts := testService(t, Config{Workers: 1, MaxSessions: 2})
	a := mustCreate(t, ts.URL, SessionRequest{Formula: tinyTrue})
	b := mustCreate(t, ts.URL, SessionRequest{Formula: tinyTrue})

	// Touch a so b becomes the LRU candidate.
	if status, _ := postSession(t, ts.URL, "/v1/session/"+a, SessionSolveRequest{Seq: 1}); status != result.StatusOK {
		t.Fatalf("touch a: got %d", status)
	}
	c := mustCreate(t, ts.URL, SessionRequest{Formula: tinyTrue})

	if status, _ := postSession(t, ts.URL, "/v1/session/"+b, SessionSolveRequest{Seq: 1}); status != http.StatusNotFound {
		t.Fatalf("evicted session must 404, got %d", status)
	}
	for _, id := range []string{a, c} {
		if status, _ := postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{Seq: 2, Ops: nil}); status == http.StatusNotFound {
			t.Fatalf("survivor %s was evicted", id)
		}
	}
	st := s.Snapshot().Sessions
	if st.Live != 2 || st.Created != 3 || st.Evicted != 1 {
		t.Fatalf("snapshot: %+v, want live=2 created=3 evicted=1", st)
	}
}

// TestSessionTTL: an idle session past the TTL is reaped in the
// background and its id answers 404.
func TestSessionTTL(t *testing.T) {
	s, ts := testService(t, Config{Workers: 1, SessionTTL: 60 * time.Millisecond})
	id := mustCreate(t, ts.URL, SessionRequest{Formula: tinyTrue})

	deadline := time.Now().Add(5 * time.Second)
	for {
		status, _ := postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{Seq: 1})
		if status == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session not reaped within 5s of a 60ms TTL")
		}
		// Polling bumps lastUsed, so back off past the TTL between probes.
		time.Sleep(150 * time.Millisecond)
	}
	if st := s.Snapshot().Sessions; st.Expired != 1 || st.Live != 0 {
		t.Fatalf("snapshot: %+v, want expired=1 live=0", st)
	}
}

// TestSessionDrain: Drain closes every live session and subsequent
// session traffic sheds with 503.
func TestSessionDrain(t *testing.T) {
	s, ts := testService(t, Config{Workers: 1})
	mustCreate(t, ts.URL, SessionRequest{Formula: tinyTrue})
	mustCreate(t, ts.URL, SessionRequest{Formula: tinyFalse})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := s.Snapshot().Sessions; st.Live != 0 || st.Closed != 2 {
		t.Fatalf("snapshot after drain: %+v, want live=0 closed=2", st)
	}
	if status, resp := postSession(t, ts.URL, "/v1/session", SessionRequest{Formula: tinyTrue}); status != result.StatusUnavailable || resp.Shed != ShedDraining.String() {
		t.Fatalf("create while drained: got %d shed=%q, want 503 draining", status, resp.Shed)
	}
}

// TestSessionLearnedSurvival checks the point of the whole API at the
// HTTP layer: after a push/add/pop round trip, a re-solve rides the
// retained learned clauses and reports a near-zero per-call work delta.
func TestSessionLearnedSurvival(t *testing.T) {
	_, ts := testService(t, Config{Workers: 1})
	id := mustCreate(t, ts.URL, SessionRequest{Formula: phpQDIMACS(4)})

	status, first := postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{Seq: 1})
	if status != result.StatusOK || first.Verdict != "FALSE" {
		t.Fatalf("seq 1: got %d %q", status, first.Verdict)
	}
	if first.Stats.Conflicts == 0 {
		t.Fatal("php(5,4) must conflict; per-call stats delta looks broken")
	}
	status, again := postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{
		Seq: 2, Ops: []SessionOp{{Op: "push"}, {Op: "pop"}}})
	if status != result.StatusOK || again.Verdict != "FALSE" {
		t.Fatalf("seq 2: got %d %q", status, again.Verdict)
	}
	if again.Stats.Conflicts*4 >= first.Stats.Conflicts {
		t.Fatalf("re-solve did %d conflicts vs first %d; learned clauses did not survive",
			again.Stats.Conflicts, first.Stats.Conflicts)
	}
}
