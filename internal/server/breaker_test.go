package server

import (
	"testing"
	"time"
)

// fakeClock drives the breaker's cooldown deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClockedBreaker(threshold int, cooldown time.Duration) (*breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return newBreaker(BreakerConfig{Threshold: threshold, Cooldown: cooldown, now: clk.now}), clk
}

// mustAdmit is a test helper asserting Admit's answer.
func mustAdmit(t *testing.T, b *breaker, want bool) ticket {
	t.Helper()
	tk, ok := b.Admit()
	if ok != want {
		t.Fatalf("Admit() = %v, want %v (state %v)", ok, want, b.State())
	}
	return tk
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := newClockedBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		tk := mustAdmit(t, b, true)
		b.Done(tk, false)
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("after %d failures state = %v, want closed", i+1, got)
		}
	}
	tk := mustAdmit(t, b, true)
	b.Done(tk, false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after threshold failures state = %v, want open", got)
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
	mustAdmit(t, b, false)
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, _ := newClockedBreaker(3, time.Minute)
	for i := 0; i < 10; i++ {
		tk := mustAdmit(t, b, true)
		b.Done(tk, i%2 == 0) // alternate success/failure: never 3 in a row
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed (successes must reset the count)", got)
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	b, clk := newClockedBreaker(1, time.Minute)
	tk := mustAdmit(t, b, true)
	b.Done(tk, false) // threshold 1: trip immediately
	mustAdmit(t, b, false)

	clk.advance(time.Minute)
	probe := mustAdmit(t, b, true)
	if !probe.probe {
		t.Fatal("post-cooldown admission must be marked as the probe")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	// Only one probe at a time.
	mustAdmit(t, b, false)

	b.Done(probe, true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	mustAdmit(t, b, true)
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b, clk := newClockedBreaker(1, time.Minute)
	tk := mustAdmit(t, b, true)
	b.Done(tk, false)
	clk.advance(time.Minute)
	probe := mustAdmit(t, b, true)
	b.Done(probe, false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after probe failure = %v, want open", got)
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}
	// The reopen restarts the cooldown from the failure time.
	mustAdmit(t, b, false)
	clk.advance(time.Minute)
	mustAdmit(t, b, true)
}

func TestBreakerCancelledProbeDoesNotWedgeHalfOpen(t *testing.T) {
	b, clk := newClockedBreaker(1, time.Minute)
	tk := mustAdmit(t, b, true)
	b.Done(tk, false)
	clk.advance(time.Minute)
	probe := mustAdmit(t, b, true)
	// The probe is shed before solving (queue full / drain): without
	// Cancel the half-open state would refuse probes forever.
	b.Cancel(probe)
	next := mustAdmit(t, b, true)
	if !next.probe {
		t.Fatal("after a cancelled probe the next admission must probe again")
	}
	b.Done(next, true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}

func TestBreakerStaleOutcomeWhileOpenIgnored(t *testing.T) {
	b, _ := newClockedBreaker(1, time.Minute)
	stale := mustAdmit(t, b, true) // admitted while closed...
	tk := mustAdmit(t, b, true)
	b.Done(tk, false) // ...breaker trips under it
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	// The stale request finishing well must not close an open breaker: its
	// outcome predates the failures that opened it.
	b.Done(stale, true)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after stale success = %v, want open", got)
	}
	mustAdmit(t, b, false)
}

func TestBreakerStateStrings(t *testing.T) {
	cases := map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
		BreakerState(9): "invalid",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("BreakerState(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}
