// Package server is the solve service: an HTTP/JSON daemon that keeps a
// long-lived solver process alive and well-behaved under a stream of
// requests. It wraps the engine's existing robustness primitives —
// per-request budgets with StopReasons, SafeSolve panic containment, the
// portfolio backend, and the ctx-first Solve API — in a service-level
// envelope:
//
//   - admission control: a bounded work queue with per-request queue
//     deadlines; when the queue is full the server sheds load with 429 +
//     Retry-After instead of accepting unbounded goroutines;
//   - per-request governance: request-supplied time/node/memory budgets
//     clamped by server-wide caps, with result.StopReason mapped to HTTP
//     statuses exactly as the CLIs map it to exit codes 10/20/30–34;
//   - fault containment: a worker that catches a contained panic reports
//     it, records a quarantine strike against the offending solver
//     configuration, and trips that configuration's circuit breaker so a
//     poison request cannot crash-loop the pool;
//   - graceful drain: Drain stops admissions, lets in-flight solves
//     finish inside the caller's deadline, then cancels them via context;
//     /healthz (liveness) stays green while /readyz flips not-ready the
//     moment draining starts.
//
// See DESIGN.md §10 for the architecture and the breaker state machine.
package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/portfolio"
	"repro/internal/result"
	"repro/internal/telemetry"
)

// ShedReason names why a request was rejected before solving. The
// numbering is carried in KindShed telemetry events (Event.A).
type ShedReason int

const (
	// ShedQueueFull: the admission queue was at capacity (429).
	ShedQueueFull ShedReason = iota
	// ShedDraining: the server is draining; new work is refused (503).
	ShedDraining
	// ShedBreakerOpen: the circuit breaker for the request's solver
	// configuration is open after repeated contained panics (503).
	ShedBreakerOpen
	// ShedQueueDeadline: the request waited in the queue longer than the
	// configured queue timeout and was dropped unsolved (503).
	ShedQueueDeadline
	// ShedSessionsFull: the sticky-session store was at capacity with every
	// session mid-solve, so none could be evicted (429).
	ShedSessionsFull
)

func (r ShedReason) String() string {
	switch r {
	case ShedQueueFull:
		return "queue-full"
	case ShedDraining:
		return "draining"
	case ShedBreakerOpen:
		return "breaker-open"
	case ShedQueueDeadline:
		return "queue-deadline"
	case ShedSessionsFull:
		return "sessions-full"
	default:
		return "unknown"
	}
}

// numShedReasons sizes the per-reason counters; keep in sync with the
// constants above.
const numShedReasons = 5

// Config tunes a Server. The zero value serves with safe defaults:
// NumCPU workers, a 64-deep queue, a 2 s queue deadline, an 8 MiB body
// cap, and no budget caps.
type Config struct {
	// Workers is the solver pool size (0 = NumCPU).
	Workers int
	// QueueDepth bounds the admission queue (0 = 64). Requests beyond
	// Workers+QueueDepth are shed with 429.
	QueueDepth int
	// QueueTimeout is the longest a request may wait for a worker before
	// being shed with 503 (0 = 2s).
	QueueTimeout time.Duration
	// MaxBody caps the request body in bytes (0 = 8 MiB).
	MaxBody int64
	// Caps are the server-wide ceilings clamping request budgets.
	Caps Caps
	// RetryAfter is the hint sent with 429/503 responses (0 = 1s).
	RetryAfter time.Duration
	// Breaker tunes the per-configuration circuit breakers.
	Breaker BreakerConfig
	// PortfolioWorkers sizes mode=portfolio races (0 = 4).
	PortfolioWorkers int
	// MaxSessions caps the sticky-session store (0 = 64). Opening a
	// session beyond the cap evicts the least-recently-used idle session;
	// when every session is mid-solve the open sheds with 429.
	MaxSessions int
	// SessionTTL expires sessions idle longer than this (0 = 5 min).
	SessionTTL time.Duration
	// Tracer, when non-nil, receives admit/shed/serve events (and is
	// handed to every solver, so request traces carry search events too).
	Tracer *telemetry.Tracer

	// JournalDir, when non-empty, makes sessions crash-tolerant: every
	// accepted session op is journaled to a write-ahead log in this
	// directory before execution, and on construction the server replays
	// the log, rebuilding the sessions a crash destroyed (DESIGN.md §13).
	// A journal that cannot be opened or written flips the store into
	// visible degraded non-durable mode instead of shedding traffic.
	JournalDir string
	// JournalFsync is the durability policy: "always", "interval"
	// (default), or "never" (journal.ParsePolicy).
	JournalFsync string
	// JournalFsyncInterval is the background flush period under the
	// "interval" policy (0 = 50ms).
	JournalFsyncInterval time.Duration
	// JournalSegmentBytes is the segment rotation threshold (0 = 4 MiB).
	JournalSegmentBytes int64
	// JournalCompactEvery is the append count between snapshot-compaction
	// attempts (0 = 1024).
	JournalCompactEvery int64
	// JournalOnAppend, when non-nil, runs after every durable journal
	// append with the lifetime count. Chaos tests use it to kill the
	// process at an exact journal position.
	JournalOnAppend func(total int64)

	// testSolverHook, when non-nil, runs after each sequential solver is
	// constructed, before solving. In-package chaos tests use it to
	// install qbfdebug fault-injection hooks keyed on the request.
	testSolverHook func(spec *solveSpec, s *core.Solver)
}

// DefaultWorkers is the pool size used when Config.Workers is zero.
func DefaultWorkers() int { return runtime.NumCPU() }

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 8 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.PortfolioWorkers <= 0 {
		c.PortfolioWorkers = 4
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 5 * time.Minute
	}
	return c
}

// job is one admitted request travelling from the handler to a worker.
type job struct {
	spec *solveSpec
	//lint:allow L10 request-scoped carrier: the job moves the request ctx across the queue to its worker
	ctx  context.Context // the request's context (client disconnect)
	tk   ticket          // breaker admission to resolve
	br   *breaker
	enq  time.Time
	done chan jobResult // buffered(1): the worker never blocks on it
}

type jobResult struct {
	status int
	resp   SolveResponse
}

// Server is the solve service. Construct with New, mount Handler on an
// http.Server, and call Drain on shutdown.
type Server struct {
	cfg   Config
	queue chan *job

	draining atomic.Bool
	// pending counts requests between admission and response; Drain polls
	// it to zero. Incremented before the draining check so the two cannot
	// race (see Drain).
	pending atomic.Int64
	active  atomic.Int64 // requests currently inside a solver

	// solveCtx is cancelled when the drain deadline forces in-flight
	// solves to stop; every solve context is derived from the request
	// context AND this one.
	//lint:allow L10 server-owned lifecycle root: Drain cancels it to force in-flight solves to stop
	solveCtx    context.Context
	forceCancel context.CancelFunc

	stopWorkers chan struct{}
	stopOnce    sync.Once
	workers     sync.WaitGroup

	mu         sync.Mutex
	breakers   map[string]*breaker
	quarantine map[string]int64 // config key → contained panics

	sessions *sessionStore

	admitted  atomic.Int64
	completed atomic.Int64
	panics    atomic.Int64
	shed      [numShedReasons]atomic.Int64
}

// New builds a Server and starts its worker pool. The returned server is
// immediately ready; stop it with Drain.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		queue:       make(chan *job, cfg.QueueDepth),
		stopWorkers: make(chan struct{}),
		breakers:    map[string]*breaker{},
		quarantine:  map[string]int64{},
	}
	// The server owns its workers' lifecycle: this is the API edge where
	// the root context is created, not a library call site reaching for a
	// context it should have been handed.
	s.solveCtx, s.forceCancel = context.WithCancel(context.Background()) //lint:allow L8 server-owned lifecycle root
	s.sessions = newSessionStore(cfg, s)
	if cfg.JournalDir != "" {
		s.openJournal(cfg)
	}
	s.workers.Add(cfg.Workers + 1)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	go s.sessionReaper()
	return s
}

// openJournal opens (or creates) the session write-ahead log and replays
// it through the recovery manager. Called from New before any worker
// starts, so recovery sees a quiescent store. A journal that cannot be
// opened — bad policy string, unusable directory, unreadable segments —
// does not stop the server: the store comes up in visible degraded
// non-durable mode and serves traffic from memory.
func (s *Server) openJournal(cfg Config) {
	js := &journalState{tracer: cfg.Tracer, compactEvery: cfg.JournalCompactEvery}
	if js.compactEvery <= 0 {
		js.compactEvery = 1024
	}
	s.sessions.jr = js
	pol, err := journal.ParsePolicy(cfg.JournalFsync)
	if err != nil {
		js.degrade()
		return
	}
	j, recs, err := journal.Open(journal.Options{
		Dir:           cfg.JournalDir,
		Fsync:         pol,
		FsyncInterval: cfg.JournalFsyncInterval,
		SegmentBytes:  cfg.JournalSegmentBytes,
		OnAppend:      cfg.JournalOnAppend,
	})
	if err != nil {
		js.degrade()
		return
	}
	js.j = j
	if dropped := j.Stats().TruncatedBytes; dropped > 0 {
		s.emitJournal(4, dropped)
	}
	s.sessions.recover(recs)
}

func (s *Server) emitJournal(event, detail int64) {
	s.cfg.Tracer.Emit(telemetry.KindJournal, 0, 0, event, detail)
}

// sessionReaper expires idle sessions on a fraction of the TTL until the
// server shuts down.
func (s *Server) sessionReaper() {
	defer s.workers.Done()
	period := s.cfg.SessionTTL / 4
	if period < 50*time.Millisecond {
		period = 50 * time.Millisecond
	}
	if period > 30*time.Second {
		period = 30 * time.Second
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-s.stopWorkers:
			return
		case now := <-tick.C:
			s.sessions.reap(now)
			s.sessions.maybeCompact()
		}
	}
}

// Handler returns the service mux:
//
//	POST /solve    decode → admit → queue → solve → respond
//	               (also mounted as /v1/solve, the versioned path the
//	               qbfgate front tier proxies)
//	GET  /healthz  liveness: 200 while the process serves at all
//	GET  /readyz   readiness: 200, flipping to 503 at drain start
//	GET  /statusz  JSON counters, breaker states, quarantine ledger
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/v1/session", s.gated(s.sessions.handleCreate))
	mux.HandleFunc("/v1/session/", s.gated(s.sessions.handleSession))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n") //nolint:errcheck // probe body is best-effort
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.WriteHeader(result.StatusUnavailable)
			io.WriteString(w, "draining\n") //nolint:errcheck // probe body is best-effort
			return
		}
		w.WriteHeader(http.StatusOK)
		if s.sessions.jr.isDegraded() {
			// Still 200 — a failed journal disk must not knock the node
			// out of rotation — but the body carries the durability loss
			// for operators and probes that read it.
			io.WriteString(w, "ready degraded:non-durable\n") //nolint:errcheck // probe body is best-effort
			return
		}
		io.WriteString(w, "ready\n") //nolint:errcheck // probe body is best-effort
	})
	mux.HandleFunc("/statusz", s.handleStatus)
	return mux
}

// gated wraps a handler with the shared admission envelope: the request is
// counted against Drain's pending gauge before the drain flag is checked
// (see handleSolve for why that order matters), and sheds with 503 once
// draining has begun.
func (s *Server) gated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.pending.Add(1)
		defer s.pending.Add(-1)
		if s.draining.Load() {
			s.writeShed(w, ShedDraining, result.StatusUnavailable)
			return
		}
		h(w, r)
	}
}

// readBody reads the request body under the configured size cap, writing
// the rejection itself and reporting false when the body is unusable.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBody+1))
	if err != nil {
		writeJSON(w, result.StatusBadRequest, SolveResponse{Error: "reading body: " + err.Error()})
		return nil, false
	}
	if int64(len(body)) > s.cfg.MaxBody {
		writeJSON(w, http.StatusRequestEntityTooLarge, SolveResponse{
			Error: "body exceeds " + strconv.FormatInt(s.cfg.MaxBody, 10) + " bytes"})
		return nil, false
	}
	return body, true
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, SolveResponse{Error: "POST a SolveRequest to /solve"})
		return
	}
	// Count the request before checking the drain flag: Drain sets the
	// flag and then waits for pending to reach zero, so any request that
	// slipped past the flag is still counted (and any counted after the
	// flag is set immediately sheds and uncounts).
	s.pending.Add(1)
	defer s.pending.Add(-1)
	if s.draining.Load() {
		s.writeShed(w, ShedDraining, result.StatusUnavailable)
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, err := ParseSolveRequest(body)
	if err != nil {
		writeJSON(w, result.StatusBadRequest, SolveResponse{Error: err.Error()})
		return
	}
	spec, err := buildSpec(req, s.cfg.Caps)
	if err != nil {
		writeJSON(w, result.StatusBadRequest, SolveResponse{Error: err.Error()})
		return
	}
	spec.opt.Telemetry = s.cfg.Tracer

	br := s.breakerFor(spec.key)
	tk, ok := br.Admit()
	if !ok {
		s.writeShed(w, ShedBreakerOpen, result.StatusUnavailable)
		return
	}

	j := &job{spec: spec, ctx: r.Context(), tk: tk, br: br, enq: time.Now(), done: make(chan jobResult, 1)}
	select {
	case s.queue <- j:
		s.admitted.Add(1)
		s.emit(telemetry.KindAdmit, int64(len(s.queue)), s.active.Load())
	default:
		br.Cancel(tk)
		s.writeShed(w, ShedQueueFull, result.StatusTooManyRequests)
		return
	}

	select {
	case res := <-j.done:
		writeJSON(w, res.status, res.resp)
	case <-r.Context().Done():
		// The client is gone; the worker will observe the dead context
		// and discard the job. There is nobody left to respond to.
	}
}

// writeShed emits the shed telemetry event, bumps the counter, and writes
// the rejection with a Retry-After hint (all shed statuses are retryable).
func (s *Server) writeShed(w http.ResponseWriter, reason ShedReason, status int) {
	s.shed[reason].Add(1)
	s.emit(telemetry.KindShed, int64(reason), int64(len(s.queue)))
	w.Header().Set("Retry-After", strconv.FormatInt(int64(s.cfg.RetryAfter/time.Second)+1, 10))
	writeJSON(w, status, SolveResponse{Shed: reason.String(), Error: "load shed: " + reason.String()})
}

func writeJSON(w http.ResponseWriter, status int, resp SolveResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(resp) //nolint:errcheck // the client may have gone away; nothing to do
}

// worker is one solver goroutine: it pops admitted jobs and runs them
// until the server shuts down.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case <-s.stopWorkers:
			return
		case j := <-s.queue:
			s.serveJob(j)
		}
	}
}

// serveJob runs one admitted job end to end: queue-deadline and drain
// checks, the contained solve, breaker/quarantine bookkeeping, and the
// response. It must never panic — a worker death would shrink the pool
// forever — so the solve itself goes through SafeSolve and everything
// else is straight-line code.
func (s *Server) serveJob(j *job) {
	queued := time.Since(j.enq)
	switch {
	case j.ctx.Err() != nil:
		// The client disconnected while the job sat in the queue; nobody
		// is waiting on done (the handler returned), so just release the
		// breaker admission.
		j.br.Cancel(j.tk)
		return
	case s.draining.Load():
		j.br.Cancel(j.tk)
		s.shed[ShedDraining].Add(1)
		s.emit(telemetry.KindShed, int64(ShedDraining), int64(len(s.queue)))
		j.done <- s.shedResult(ShedDraining)
		return
	case queued > s.cfg.QueueTimeout:
		j.br.Cancel(j.tk)
		s.shed[ShedQueueDeadline].Add(1)
		s.emit(telemetry.KindShed, int64(ShedQueueDeadline), int64(len(s.queue)))
		j.done <- s.shedResult(ShedQueueDeadline)
		return
	}

	// The solve context merges the request context (client disconnect)
	// with the server's force-cancel root (drain deadline). Budgets ride
	// in Options; the solver polls both at every propagation fixpoint.
	ctx, cancel := context.WithCancel(j.ctx)
	stop := context.AfterFunc(s.solveCtx, cancel)
	s.active.Add(1)
	start := time.Now()
	res := s.solve(ctx, j.spec)
	elapsed := time.Since(start)
	s.active.Add(-1)
	stop()
	cancel()

	ok := res.status != result.StatusInternalError
	j.br.Done(j.tk, ok)
	if !ok {
		s.panics.Add(1)
		s.mu.Lock()
		s.quarantine[j.spec.key]++
		s.mu.Unlock()
	}
	s.completed.Add(1)
	res.resp.QueueMS = queued.Milliseconds()
	res.resp.SolveMS = elapsed.Milliseconds()
	s.emit(telemetry.KindServe, verdictCode(res.resp.Verdict), int64(statusStop(res.resp.Stop)))
	j.done <- res
}

// solve runs the spec under full containment and maps the outcome to its
// HTTP status.
func (s *Server) solve(ctx context.Context, spec *solveSpec) jobResult {
	if spec.portfolio {
		rep, err := portfolio.Solve(ctx, spec.q, portfolio.Options{
			Workers: s.cfg.PortfolioWorkers,
			Share:   true,
			Base:    spec.opt,
		})
		if err != nil || rep.Err() != nil {
			if err == nil {
				err = rep.Err()
			}
			return jobResult{status: result.StatusInternalError,
				resp: solveResponse(result.Unknown, result.StopPanicked, rep.Stats, nil, err)}
		}
		var wit []int
		if spec.witness && rep.Verdict == core.True {
			wit = witnessInts(rep.Witness, spec.q.MaxVar())
		}
		return jobResult{status: result.HTTPStatus(rep.Verdict, rep.Stop),
			resp: solveResponse(rep.Verdict, rep.Stop, rep.Stats, wit, nil)}
	}

	solver, err := core.NewSolver(spec.q, spec.opt)
	if err != nil {
		// buildSpec validated the formula, so a construction failure is a
		// server-side defect, not a bad request.
		return jobResult{status: result.StatusInternalError,
			resp: SolveResponse{Verdict: result.Unknown.String(), Error: err.Error()}}
	}
	if s.cfg.testSolverHook != nil {
		s.cfg.testSolverHook(spec, solver)
	}
	v, err := solver.SafeSolve(ctx)
	st := solver.Stats()
	if err != nil {
		return jobResult{status: result.StatusInternalError,
			resp: solveResponse(result.Unknown, result.StopPanicked, st, nil, err)}
	}
	var wit []int
	if spec.witness && v == core.True {
		if model, has := solver.Witness(); has {
			wit = witnessInts(model, spec.q.MaxVar())
		}
	}
	return jobResult{status: result.HTTPStatus(v, st.StopReason),
		resp: solveResponse(v, st.StopReason, st, wit, nil)}
}

// mergeCtx derives a context cancelled by either the request context
// (client disconnect) or the server's force-cancel root (drain deadline).
// The returned CancelFunc releases both hooks and must always be called.
func (s *Server) mergeCtx(req context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(req)
	stop := context.AfterFunc(s.solveCtx, cancel)
	return ctx, func() {
		stop()
		cancel()
	}
}

func (s *Server) shedResult(reason ShedReason) jobResult {
	return jobResult{
		status: result.StatusUnavailable,
		resp:   SolveResponse{Shed: reason.String(), Error: "load shed: " + reason.String()},
	}
}

func (s *Server) breakerFor(key string) *breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.breakers[key]
	if !ok {
		b = newBreaker(s.cfg.Breaker)
		s.breakers[key] = b
	}
	return b
}

func (s *Server) emit(k telemetry.Kind, a, b int64) {
	s.cfg.Tracer.Emit(k, 0, 0, a, b)
}

// ErrDrainForced reports that Drain's deadline expired with solves still
// in flight: they were force-cancelled (each completing with a
// StopCancelled response) rather than allowed to finish. The
// conventional process exit code for this outcome is 130.
var ErrDrainForced = drainForcedError{}

type drainForcedError struct{}

func (drainForcedError) Error() string {
	return "server: drain deadline exceeded; in-flight solves were cancelled"
}

// Drain shuts the server down gracefully: admissions stop immediately
// (/readyz flips to 503, new /solve requests shed with 503, queued jobs
// shed with 503), in-flight solves run to completion, and when ctx
// expires first the remaining solves are cancelled via context — they
// observe the cancellation at their next propagation fixpoint and
// respond 503/cancelled. Drain returns nil on a clean drain and
// ErrDrainForced when the deadline forced cancellation. It always waits
// for every pending request to receive its response and for every worker
// to exit before returning.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	forced := false
	// The poll waits on a ticker, not a bare sleep, so the deadline that
	// forces cancellation is observed the moment it fires (L14).
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for s.pending.Load() > 0 {
		if !forced {
			select {
			case <-ctx.Done():
				forced = true
				s.forceCancel()
			case <-tick.C:
			}
			continue
		}
		<-tick.C
	}
	// Sticky sessions are torn down after the last pending request has
	// been answered: a session op that slipped past the drain flag holds
	// its session lock until it responds, and closeAll takes each lock,
	// so teardown cannot race an in-flight session solve.
	s.sessions.closeAll()
	s.sessions.jr.close()
	s.stopOnce.Do(func() { close(s.stopWorkers) })
	s.workers.Wait()
	if forced {
		return ErrDrainForced
	}
	return nil
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	Admitted  int64                   `json:"admitted"`
	Completed int64                   `json:"completed"`
	Panics    int64                   `json:"panics"`
	Shed      map[string]int64        `json:"shed"`
	Breakers  map[string]BreakerStats `json:"breakers"`
	// Quarantined lists solver configurations with at least one contained
	// panic on record, sorted.
	Quarantined []string     `json:"quarantined"`
	InFlight    int64        `json:"in_flight"`
	QueueDepth  int64        `json:"queue_depth"`
	Draining    bool         `json:"draining"`
	Sessions    SessionStats `json:"sessions"`
	Journal     JournalStats `json:"journal"`
}

// SessionStats reports the sticky-session store.
type SessionStats struct {
	Live    int64 `json:"live"`
	Created int64 `json:"created"`
	Closed  int64 `json:"closed"`
	Expired int64 `json:"expired"`
	Evicted int64 `json:"evicted"`
}

// BreakerStats reports one configuration's breaker.
type BreakerStats struct {
	State  string `json:"state"`
	Trips  int64  `json:"trips"`
	Panics int64  `json:"panics"`
}

// Snapshot collects the service counters (the /statusz payload).
func (s *Server) Snapshot() Stats {
	st := Stats{
		Admitted:   s.admitted.Load(),
		Completed:  s.completed.Load(),
		Panics:     s.panics.Load(),
		Shed:       map[string]int64{},
		Breakers:   map[string]BreakerStats{},
		InFlight:   s.active.Load(),
		QueueDepth: int64(len(s.queue)),
		Draining:   s.draining.Load(),
		Sessions:   s.sessions.snapshot(),
		Journal:    s.sessions.jr.snapshot(),
	}
	for r := 0; r < numShedReasons; r++ {
		st.Shed[ShedReason(r).String()] = s.shed[r].Load()
	}
	s.mu.Lock()
	for key, b := range s.breakers {
		st.Breakers[key] = BreakerStats{State: b.State().String(), Trips: b.Trips(), Panics: s.quarantine[key]}
	}
	for key, n := range s.quarantine {
		if n > 0 {
			st.Quarantined = append(st.Quarantined, key)
		}
	}
	s.mu.Unlock()
	sort.Strings(st.Quarantined)
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Snapshot()) //nolint:errcheck // the client may have gone away
}

// verdictCode maps a verdict string back to its numeric code for the
// KindServe event payload (Unknown when the string is empty or foreign).
func verdictCode(v string) int64 {
	switch v {
	case result.True.String():
		return int64(result.True)
	case result.False.String():
		return int64(result.False)
	default:
		return int64(result.Unknown)
	}
}

// statusStop is the inverse of StopReason.String for the KindServe event.
func statusStop(s string) result.StopReason {
	for r := result.StopNone; r <= result.StopPanicked; r++ {
		if r.String() == s {
			return r
		}
	}
	return result.StopNone
}
