package server

import (
	"encoding/json"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/result"
	"repro/internal/telemetry"
)

// Boot-time recovery: replay the journal's surviving records (already
// torn-tail-truncated by journal.Open) and rebuild every session that was
// live at the crash. Replay is deterministic because recovery runs the
// same code paths as live traffic — the create request goes back through
// ParseSessionRequest + buildSpec, and each recOps record re-applies its
// ops through applyOp, stopping at the first failing op exactly as the
// original call did (op validation is deterministic, so a partially
// applied call is partially re-applied to the same point).

// recover rebuilds the session store from replayed records. Called from
// New before any worker or reaper goroutine starts, so the store is
// effectively single-threaded here.
func (st *sessionStore) recover(records []journal.Record) {
	type pendingCall struct{ seq int64 }
	sessions := map[string]*session{}
	pending := map[string]pendingCall{}
	var maxID uint64

	for _, rec := range records {
		switch rec.Type {
		case recOpen:
			var r journalOpen
			if json.Unmarshal(rec.Data, &r) != nil {
				continue
			}
			if s := st.rebuildSession(r.ID, r.Req); s != nil {
				sessions[r.ID] = s
			}
			maxID = maxUint64(maxID, parseSessionID(r.ID))
		case recOps:
			var r journalOps
			if json.Unmarshal(rec.Data, &r) != nil {
				continue
			}
			s := sessions[r.ID]
			if s == nil {
				continue
			}
			applyRecoveredOps(s, r.Ops)
			pending[r.ID] = pendingCall{seq: r.Seq}
		case recDone:
			var r journalDone
			if json.Unmarshal(rec.Data, &r) != nil {
				continue
			}
			s := sessions[r.ID]
			if s == nil {
				continue
			}
			s.lastSeq, s.lastCode = r.Seq, r.Code
			s.lastResp = SolveResponse{}
			if len(r.Resp) > 0 {
				json.Unmarshal(r.Resp, &s.lastResp) //nolint:errcheck // a CRC-valid record we wrote; zero response on the impossible mismatch
			}
			delete(pending, r.ID)
		case recClose:
			var r journalClose
			if json.Unmarshal(rec.Data, &r) != nil {
				continue
			}
			delete(sessions, r.ID)
			delete(pending, r.ID)
		case recSnapshot:
			var r journalSnapshot
			if json.Unmarshal(rec.Data, &r) != nil {
				continue
			}
			s := st.rebuildSession(r.ID, r.Req)
			if s == nil {
				continue
			}
			applyRecoveredOps(s, r.Ops)
			s.lastSeq, s.lastCode = r.LastSeq, r.LastCode
			s.lastResp = SolveResponse{}
			if len(r.LastResp) > 0 {
				json.Unmarshal(r.LastResp, &s.lastResp) //nolint:errcheck // as above
			}
			sessions[r.ID] = s
			delete(pending, r.ID)
			maxID = maxUint64(maxID, parseSessionID(r.ID))
		}
	}

	// A recOps with no recDone is a call torn by the crash: its frame ops
	// are applied (the client journaled them before executing, and just
	// re-applied them above), but the solve never finished. Consume the
	// seq and record a synthesized interrupted response, so the client's
	// retry of that seq replays a final — if degraded — outcome and the
	// ladder continues from consistent state.
	for id, p := range pending {
		s := sessions[id]
		resp := SolveResponse{
			Session: id,
			Verdict: result.Unknown.String(),
			Stop:    result.StopCancelled.String(),
			Depth:   s.solver.FrameDepth(),
			Error:   "solve interrupted by server restart; frame ops were applied",
		}
		s.lastSeq, s.lastCode, s.lastResp = p.seq, result.StatusUnavailable, resp
	}

	now := time.Now()
	st.mu.Lock()
	for id, s := range sessions {
		s.lastUsed = now
		st.sessions[id] = s
		st.created++
	}
	if maxID > st.nextID {
		// Fresh ids must not collide with recovered (or tombstoned) ones:
		// an id reuse would silently splice a new session onto an old
		// client's seq counter.
		st.nextID = maxID
	}
	st.mu.Unlock()

	st.jr.recoveredSessions = int64(len(sessions))
	st.jr.recoveredRecords = int64(len(records))
	st.cfg.Tracer.Emit(telemetry.KindJournal, 0, 0, 2, int64(len(sessions)))
}

// rebuildSession reconstructs a session's pinned solver from its journaled
// create request, mirroring handleCreate. A request that fails to
// re-validate (impossible short of a schema change across a restart)
// drops the session rather than aborting recovery.
func (st *sessionStore) rebuildSession(id string, raw json.RawMessage) *session {
	req, err := ParseSessionRequest(raw)
	if err != nil {
		return nil
	}
	spec, err := sessionSpec(req, st.cfg.Caps)
	if err != nil {
		return nil
	}
	spec.opt.Telemetry = st.cfg.Tracer
	spec.opt.Incremental = true
	maxNodes := spec.opt.NodeLimit
	spec.opt.NodeLimit = 0
	solver, err := core.NewSolver(spec.q, spec.opt)
	if err != nil {
		return nil
	}
	if st.cfg.testSolverHook != nil {
		st.cfg.testSolverHook(spec, solver)
	}
	return &session{
		id: id, mode: spec.key, solver: solver, maxNodes: maxNodes,
		createReq: raw, frames: [][]SessionOp{nil},
	}
}

// applyRecoveredOps re-applies one journaled call's ops, stopping at the
// first failure exactly as the live op loop does.
func applyRecoveredOps(s *session, ops []SessionOp) {
	for _, op := range ops {
		if applyOp(s.solver, op) != nil {
			return
		}
		s.trackOp(op)
	}
}

// parseSessionID inverts the store's "s"+base36 id scheme (0 for foreign
// ids, which can then never collide with generated ones).
func parseSessionID(id string) uint64 {
	rest, ok := strings.CutPrefix(id, "s")
	if !ok {
		return 0
	}
	n, err := strconv.ParseUint(rest, 36, 64)
	if err != nil {
		return 0
	}
	return n
}

func maxUint64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
