package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/result"
	"repro/internal/server"
)

// scriptedServer replies with the scripted statuses in order, then keeps
// repeating the last one. It records how many requests arrived.
func scriptedServer(t *testing.T, statuses []int, resps []server.SolveResponse) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := int(calls.Add(1)) - 1
		if i >= len(statuses) {
			i = len(statuses) - 1
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(statuses[i])
		json.NewEncoder(w).Encode(resps[i]) //nolint:errcheck // test server
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

// fastPolicy keeps test backoffs in the microsecond range.
var fastPolicy = Policy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond, Seed: 1}

func TestClientFirstTrySuccess(t *testing.T) {
	ts, calls := scriptedServer(t, []int{result.StatusOK},
		[]server.SolveResponse{{Verdict: "TRUE"}})
	out, err := New(ts.URL, nil, fastPolicy).Solve(context.Background(), server.SolveRequest{Formula: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Attempts != 1 || !out.Decided() || out.Resp.Verdict != "TRUE" {
		t.Fatalf("out = %+v", out)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", calls.Load())
	}
}

func TestClientRetriesTransientThenSucceeds(t *testing.T) {
	ts, calls := scriptedServer(t,
		[]int{result.StatusTooManyRequests, result.StatusUnavailable, result.StatusOK},
		[]server.SolveResponse{{Shed: "queue-full"}, {Shed: "draining"}, {Verdict: "FALSE"}})
	out, err := New(ts.URL, nil, fastPolicy).Solve(context.Background(), server.SolveRequest{Formula: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Attempts != 3 || out.Status != result.StatusOK || out.Resp.Verdict != "FALSE" {
		t.Fatalf("out = %+v", out)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
}

func TestClientNeverRetriesFinalOutcomes(t *testing.T) {
	cases := []struct {
		name   string
		status int
		resp   server.SolveResponse
	}{
		{"verdict", result.StatusOK, server.SolveResponse{Verdict: "TRUE"}},
		{"bad request", result.StatusBadRequest, server.SolveResponse{Error: "empty formula"}},
		{"node limit", result.StatusUnprocessable, server.SolveResponse{Verdict: "UNKNOWN", Stop: "node-limit"}},
		{"mem limit", result.StatusInsufficientStorage, server.SolveResponse{Verdict: "UNKNOWN", Stop: "mem-limit"}},
		{"panic", result.StatusInternalError, server.SolveResponse{Verdict: "UNKNOWN", Stop: "panicked"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ts, calls := scriptedServer(t, []int{c.status}, []server.SolveResponse{c.resp})
			out, err := New(ts.URL, nil, fastPolicy).Solve(context.Background(), server.SolveRequest{Formula: "x"})
			if err != nil {
				t.Fatal(err)
			}
			if out.Status != c.status || out.Attempts != 1 {
				t.Fatalf("out = %+v, want status %d on attempt 1", out, c.status)
			}
			if calls.Load() != 1 {
				t.Fatalf("calls = %d: a final outcome was retried", calls.Load())
			}
		})
	}
}

func TestClientExhaustsRetriesGracefully(t *testing.T) {
	// Permanently shedding server: the client must hand back the last
	// well-formed rejection, not an opaque error.
	ts, calls := scriptedServer(t, []int{result.StatusUnavailable},
		[]server.SolveResponse{{Shed: "draining"}})
	out, err := New(ts.URL, nil, fastPolicy).Solve(context.Background(), server.SolveRequest{Formula: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Attempts != 4 || out.Status != result.StatusUnavailable || out.Resp.Shed != "draining" {
		t.Fatalf("out = %+v", out)
	}
	if calls.Load() != 4 {
		t.Fatalf("calls = %d, want 4", calls.Load())
	}
}

func TestClientRetriesTransportErrors(t *testing.T) {
	// A server that dies after accepting the connection produces transport
	// errors; all attempts fail and the error reports the count.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Fatal("no hijacker")
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}))
	t.Cleanup(ts.Close)
	out, err := New(ts.URL, nil, fastPolicy).Solve(context.Background(), server.SolveRequest{Formula: "x"})
	if err == nil {
		t.Fatalf("want transport error, got %+v", out)
	}
	if out.Attempts != 4 {
		t.Fatalf("attempts = %d, want 4", out.Attempts)
	}
}

func TestClientMalformedBodyIsAnError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(result.StatusOK)
		w.Write([]byte("not json")) //nolint:errcheck // test server
	}))
	t.Cleanup(ts.Close)
	_, err := New(ts.URL, nil, fastPolicy).Solve(context.Background(), server.SolveRequest{Formula: "x"})
	if err == nil {
		t.Fatal("malformed body must surface as an error")
	}
}

func TestClientHonoursContext(t *testing.T) {
	ts, _ := scriptedServer(t, []int{result.StatusUnavailable},
		[]server.SolveResponse{{Shed: "draining"}})
	// Long backoffs + cancelled context: Solve must return promptly with
	// the context error instead of sleeping out the policy.
	pol := Policy{MaxAttempts: 4, BaseDelay: time.Hour, MaxDelay: time.Hour, Seed: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := New(ts.URL, nil, pol).Solve(ctx, server.SolveRequest{Formula: "x"})
	if err == nil {
		t.Fatal("cancelled solve must error")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("Solve ignored the context for %v", time.Since(start))
	}
}

func TestClientBackoffGrowsAndHonoursRetryAfter(t *testing.T) {
	c := New("http://unused", nil, Policy{MaxAttempts: 8, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Seed: 7})
	prevMax := time.Duration(0)
	for attempt := 1; attempt <= 6; attempt++ {
		d := c.backoff(attempt, 0)
		// Equal jitter: the delay lives in [cap/2, cap] for the attempt's
		// exponential cap.
		capd := c.pol.BaseDelay << (attempt - 1)
		if capd > c.pol.MaxDelay || capd <= 0 {
			capd = c.pol.MaxDelay
		}
		if d < capd/2 || d > capd {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, capd/2, capd)
		}
		if capd > prevMax {
			prevMax = capd
		}
	}
	// Retry-After is a floor.
	if d := c.backoff(1, 10*time.Second); d != 10*time.Second {
		t.Fatalf("Retry-After floor ignored: %v", d)
	}
}

func TestClientZeroPolicyDefaults(t *testing.T) {
	p := Policy{}.withDefaults()
	if p.MaxAttempts != 4 || p.BaseDelay != 100*time.Millisecond || p.MaxDelay != 5*time.Second {
		t.Fatalf("defaults = %+v", p)
	}
}

// TestClientBackoffCappedByDeadline: when the next backoff cannot finish
// before the caller's deadline, Solve gives the time back immediately
// instead of burning the remaining budget waiting for a retry it will
// never make.
func TestClientBackoffCappedByDeadline(t *testing.T) {
	ts, calls := scriptedServer(t, []int{result.StatusUnavailable},
		[]server.SolveResponse{{Shed: "draining"}})
	// Backoff is seconds; the deadline is tens of milliseconds.
	pol := Policy{MaxAttempts: 4, BaseDelay: 10 * time.Second, MaxDelay: 10 * time.Second, Seed: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	out, err := New(ts.URL, nil, pol).Solve(ctx, server.SolveRequest{Formula: "x"})
	if err == nil {
		t.Fatalf("want deadline error, got %+v", out)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if took := time.Since(start); took > time.Second {
		t.Errorf("Solve held the caller %v; the capped backoff should return at once", took)
	}
	if out.Attempts != 1 || calls.Load() != 1 {
		t.Errorf("attempts=%d calls=%d, want 1/1 (no retry fits the deadline)", out.Attempts, calls.Load())
	}
}
