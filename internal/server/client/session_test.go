package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/result"
	"repro/internal/server"
)

const sesTinyTrue = "p cnf 2 2\ne 1 2 0\n1 0\n-2 0\n"

// realService runs an actual qbfd server (not a scripted stub): session
// semantics live server-side, so the client tests exercise the real
// protocol end to end.
func realService(t *testing.T) *Client {
	t.Helper()
	s := server.New(server.Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // best-effort teardown
	})
	return New(ts.URL, nil, fastPolicy)
}

// TestSessionRoundTrip drives a full session through the handle: solve,
// push+add flipping the verdict, pop restoring it, close.
func TestSessionRoundTrip(t *testing.T) {
	c := realService(t)
	ctx := context.Background()

	sess, out, err := c.OpenSession(ctx, server.SessionRequest{Formula: sesTinyTrue})
	if err != nil || sess == nil {
		t.Fatalf("open: %v (out %+v)", err, out)
	}
	if sess.ID() == "" {
		t.Fatal("open: empty session id")
	}

	out, err = sess.Solve(ctx, nil, false)
	if err != nil || !out.Decided() || out.Resp.Verdict != "TRUE" {
		t.Fatalf("solve 1: %v %+v", err, out)
	}
	out, err = sess.Solve(ctx, []server.SessionOp{{Op: "push"}, {Op: "add", Lits: []int{-1}}}, false)
	if err != nil || out.Resp.Verdict != "FALSE" || out.Resp.Depth != 1 {
		t.Fatalf("solve 2: %v %+v", err, out)
	}
	out, err = sess.Solve(ctx, []server.SessionOp{{Op: "pop"}}, true)
	if err != nil || out.Resp.Verdict != "TRUE" || out.Resp.Depth != 0 {
		t.Fatalf("solve 3: %v %+v", err, out)
	}
	if len(out.Resp.Witness) != 2 {
		t.Fatalf("solve 3: witness %v", out.Resp.Witness)
	}

	out, err = sess.Close(ctx)
	if err != nil || out.Status != result.StatusOK {
		t.Fatalf("close: %v %+v", err, out)
	}
	// The handle is dead; further solves surface the server's 404 as a
	// final outcome, not an error or a retry storm.
	out, err = sess.Solve(ctx, nil, false)
	if err != nil || out.Status != http.StatusNotFound || out.Attempts != 1 {
		t.Fatalf("solve after close: %v %+v", err, out)
	}
}

// TestSessionRejectedOpsConsumeSeq: a 400 from bad ops must advance the
// handle's seq (the server recorded it), so the next call still works.
func TestSessionRejectedOpsConsumeSeq(t *testing.T) {
	c := realService(t)
	ctx := context.Background()
	sess, out, err := c.OpenSession(ctx, server.SessionRequest{Formula: sesTinyTrue})
	if err != nil || sess == nil {
		t.Fatalf("open: %v (out %+v)", err, out)
	}
	out, err = sess.Solve(ctx, []server.SessionOp{{Op: "pop"}}, false)
	if err != nil || out.Status != result.StatusBadRequest {
		t.Fatalf("bad op: %v %+v", err, out)
	}
	out, err = sess.Solve(ctx, nil, false)
	if err != nil || !out.Decided() || out.Resp.Verdict != "TRUE" {
		t.Fatalf("solve after 400: %v %+v", err, out)
	}
}
