package client

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/server"
)

// TestSessionReconnectAcrossRestart exercises the crash-tolerance loop
// end to end from the client's side: the server dies mid-ladder
// (connection refused), a replacement boots from the same journal on the
// same address, and the in-flight Solve re-establishes at its own seq and
// completes against the recovered session — the caller never sees the
// restart.
func TestSessionReconnectAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{Workers: 1, JournalDir: dir, JournalFsync: "always"}

	s1 := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hs1 := &http.Server{Handler: s1.Handler()}
	go hs1.Serve(ln) //nolint:errcheck // ends with hs1.Close

	c := New("http://"+addr, nil, fastPolicy)
	ctx := context.Background()
	sess, out, err := c.OpenSession(ctx, server.SessionRequest{Formula: sesTinyTrue})
	if err != nil || sess == nil {
		t.Fatalf("open: %v (out %+v)", err, out)
	}
	if out, err := sess.Solve(ctx, []server.SessionOp{{Op: "push"}, {Op: "add", Lits: []int{-1}}}, false); err != nil || out.Resp.Verdict != "FALSE" {
		t.Fatalf("solve before crash: %v %+v", err, out)
	}

	// Crash: the listener vanishes. Deliberately no Drain — a drain would
	// tombstone the journal; an abandoned server is what a SIGKILL leaves.
	hs1.Close() //nolint:errcheck // simulated crash

	// The next call starts while the server is down and must ride out the
	// connection-refused window.
	cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	type res struct {
		out Outcome
		err error
	}
	ch := make(chan res, 1)
	go func() {
		o, e := sess.Solve(cctx, []server.SessionOp{{Op: "pop"}}, false)
		ch <- res{o, e}
	}()
	time.Sleep(50 * time.Millisecond) // let it fail against the dead address a few times

	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	s2 := server.New(cfg)
	hs2 := &http.Server{Handler: s2.Handler()}
	go hs2.Serve(ln2) //nolint:errcheck // ends with hs2.Close
	t.Cleanup(func() {
		hs2.Close() //nolint:errcheck // test teardown
		dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer dcancel()
		s2.Drain(dctx) //nolint:errcheck // best-effort teardown
	})

	r := <-ch
	if r.err != nil || r.out.Resp.Verdict != "TRUE" || r.out.Resp.Depth != 0 {
		t.Fatalf("solve across restart: %v %+v", r.err, r.out)
	}
	// The handle keeps working on the recovered session.
	if out, err := sess.Solve(cctx, nil, false); err != nil || out.Resp.Verdict != "TRUE" {
		t.Fatalf("solve after reconnect: %v %+v", err, out)
	}
}
