// Package client is the Go client for the qbfd solve service. Its one
// job beyond plain HTTP is a correct retry loop: it retries exactly the
// outcomes the protocol marks transient — shed load (429), drain or
// cancellation (503), and wall-clock timeouts (504), plus transport
// errors — with exponential backoff and jitter, and it never retries a
// verdict or a caller-budget stop, which are final no matter how often
// they are re-asked. The retryability predicate is
// result.StatusRetryable, shared with the server, so the two sides
// cannot drift apart.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/result"
	"repro/internal/server"
)

// Policy tunes the retry loop. The zero value tries 4 times with a
// 100 ms base delay doubling to a 5 s cap, with full jitter on the upper
// half of each delay.
type Policy struct {
	// MaxAttempts is the total number of tries, first included (0 = 4,
	// 1 = never retry).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// attempt (0 = 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0 = 5s).
	MaxDelay time.Duration
	// Seed makes the jitter deterministic for tests (0 = a seed derived
	// from the clock).
	Seed int64
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	return p
}

// Client talks to one qbfd instance. Safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
	pol  Policy

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a client for the server at baseURL (e.g.
// "http://127.0.0.1:8080"). A nil httpClient uses http.DefaultClient.
func New(baseURL string, httpClient *http.Client, pol Policy) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	pol = pol.withDefaults()
	seed := pol.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Client{
		base: baseURL,
		hc:   httpClient,
		pol:  pol,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Outcome is one Solve call's final state: the decoded response, the HTTP
// status that produced it, and how many attempts were spent.
type Outcome struct {
	Resp     server.SolveResponse
	Status   int
	Attempts int
}

// Decided reports whether the service returned a definite verdict.
func (o Outcome) Decided() bool {
	return o.Status == result.StatusOK &&
		(o.Resp.Verdict == result.True.String() || o.Resp.Verdict == result.False.String())
}

// Solve posts req to /solve, retrying transient outcomes under the
// policy. It returns the last outcome and a nil error whenever a
// well-formed response was obtained — including non-retryable rejections
// like 400 and budget stops like 422; inspect Outcome.Status and
// Resp.Stop. The error is non-nil only when every attempt failed at the
// transport layer or the final body was not valid response JSON.
func (c *Client) Solve(ctx context.Context, req server.SolveRequest) (Outcome, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return Outcome{}, fmt.Errorf("client: encoding request: %w", err)
	}
	return c.do(ctx, http.MethodPost, "/solve", body)
}

// do runs the retry loop for one logical call against path, with the
// default finality predicate (result.StatusRetryable).
func (c *Client) do(ctx context.Context, method, path string, body []byte) (Outcome, error) {
	return c.doUntil(ctx, method, path, body, nil)
}

// doUntil is do with a custom finality predicate: a response for which
// final returns true ends the loop. A nil final accepts any non-retryable
// status. Session calls need this hook because an executed-but-degraded
// outcome (timeout, cancellation) is recorded against the seq and must
// not be re-asked — a retry would only replay the recorded response.
func (c *Client) doUntil(ctx context.Context, method, path string, body []byte, final func(httpResult) bool) (Outcome, error) {
	if final == nil {
		final = func(r httpResult) bool { return !result.StatusRetryable(r.status) }
	}
	var out Outcome
	var lastErr error
	var lastRA time.Duration
	for attempt := 0; attempt < c.pol.MaxAttempts; attempt++ {
		out.Attempts = attempt + 1
		if attempt > 0 {
			d := c.backoff(attempt, lastRA)
			// A backoff that cannot finish before the caller's deadline
			// would burn the whole remaining budget just to report the same
			// failure later; give the caller its time back instead.
			if dl, ok := ctx.Deadline(); ok {
				if rem := time.Until(dl); rem <= d {
					out.Attempts = attempt // the aborted try never happened
					return out, fmt.Errorf("client: backoff %v exceeds remaining deadline %v: %w",
						d, rem, context.DeadlineExceeded)
				}
			}
			if err := c.sleep(ctx, d); err != nil {
				return out, err
			}
		}
		resp, err := c.post(ctx, method, path, body)
		if err != nil {
			lastErr = err
			lastRA = 0
			if ctx.Err() != nil {
				return out, fmt.Errorf("client: %w", ctx.Err())
			}
			continue // transport errors are retryable
		}
		out.Status = resp.status
		out.Resp = resp.body
		lastErr = nil
		lastRA = resp.retryAfter
		if final(resp) {
			return out, nil
		}
	}
	if lastErr != nil {
		return out, fmt.Errorf("client: %d attempts failed, last: %w", out.Attempts, lastErr)
	}
	// Retries exhausted on a retryable status: the caller gets the last
	// well-formed rejection rather than an opaque error.
	return out, nil
}

type httpResult struct {
	status     int
	body       server.SolveResponse
	retryAfter time.Duration
}

func (c *Client) post(ctx context.Context, method, path string, body []byte) (httpResult, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return httpResult{}, err
	}
	if body != nil {
		hreq.Header.Set("Content-Type", "application/json")
	}
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return httpResult{}, err
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hresp.Body, 16<<20))
	if err != nil {
		return httpResult{}, err
	}
	var out httpResult
	out.status = hresp.StatusCode
	if err := json.Unmarshal(data, &out.body); err != nil {
		return httpResult{}, fmt.Errorf("status %d with malformed body: %w", hresp.StatusCode, err)
	}
	if ra := hresp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			out.retryAfter = time.Duration(secs) * time.Second
		}
	}
	return out, nil
}

// backoff computes the delay before the given retry attempt (1-based):
// exponential growth from BaseDelay capped at MaxDelay, with "equal
// jitter" — half the window deterministic, half uniform — so synchronized
// clients admitted-and-shed together do not re-arrive together.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := c.pol.BaseDelay << (attempt - 1)
	if d > c.pol.MaxDelay || d <= 0 {
		d = c.pol.MaxDelay
	}
	half := d / 2
	c.mu.Lock()
	jitter := time.Duration(c.rng.Int63n(int64(half) + 1))
	c.mu.Unlock()
	d = half + jitter
	// The server's Retry-After is a floor, not a suggestion to ignore.
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return fmt.Errorf("client: %w", ctx.Err())
	case <-t.C:
		return nil
	}
}
