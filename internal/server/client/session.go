package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/result"
	"repro/internal/server"
)

// Session is a handle on one sticky server session: a pinned incremental
// solver whose learned clauses persist across Solve calls. The handle
// numbers its calls with the protocol's sequence counter, which is what
// makes the retry loop safe here: a retried call carries the same seq, so
// the server replays the recorded response instead of re-applying frame
// ops. A Session is safe for concurrent use, but calls serialize — the
// server pins one solver, so there is nothing to parallelize.
type Session struct {
	c  *Client
	id string

	mu  sync.Mutex
	seq int64
}

// OpenSession creates a sticky session over req's formula. The returned
// Outcome carries the raw create response; the *Session is non-nil only
// when the server granted one. A transport failure after retries may leak
// a server-side session — the server's TTL reaper collects it.
func (c *Client) OpenSession(ctx context.Context, req server.SessionRequest) (*Session, Outcome, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, Outcome{}, fmt.Errorf("client: encoding session request: %w", err)
	}
	out, err := c.do(ctx, http.MethodPost, "/v1/session", body)
	if err != nil || out.Status != result.StatusOK || out.Resp.Session == "" {
		return nil, out, err
	}
	return &Session{c: c, id: out.Resp.Session}, out, nil
}

// ID returns the server-assigned session id.
func (s *Session) ID() string { return s.id }

// Solve applies ops in order on the session's solver, then solves,
// retrying transient outcomes under the client policy. Because every
// retry reuses the same sequence number, a call observed by the server is
// never executed twice. A 404 means the session no longer exists (closed,
// expired, or evicted); a 409 means another handle advanced the session's
// sequence — both are final outcomes, not errors.
//
// When the server vanishes mid-call — connection refused during a crash
// and restart — Solve keeps re-establishing for as long as ctx allows:
// the server journals session state and recovers it on boot, and the seq
// protocol makes the re-sent call safe (executed once, or replayed from
// the recovered idempotency record). A caller that does not want to wait
// out a restart bounds ctx with a deadline; without one, an unreachable
// server fails the call only when the transport keeps erroring and ctx
// is cancelled.
func (s *Session) Solve(ctx context.Context, ops []server.SessionOp, witness bool) (Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	body, err := json.Marshal(server.SessionSolveRequest{Seq: s.seq + 1, Ops: ops, Witness: witness})
	if err != nil {
		return Outcome{}, fmt.Errorf("client: encoding session solve: %w", err)
	}
	for {
		// Retry only sheds, which by protocol did not execute the ops: an
		// executed call — even a degraded one (timeout, cancelled,
		// panicked, rejected ops) — consumed the seq, and re-asking it
		// would only replay the recorded response.
		out, err := s.c.doUntil(ctx, http.MethodPost, "/v1/session/"+s.id, body,
			func(r httpResult) bool {
				return !result.StatusRetryable(r.status) || r.body.Replayed || r.body.Shed == ""
			})
		if err != nil && ctx.Err() == nil {
			// Every attempt failed at the transport layer but the caller's
			// context is still live: the server is likely restarting with
			// journal recovery pending. Back off one max delay and
			// re-establish at the same seq.
			if serr := s.c.sleep(ctx, s.c.pol.MaxDelay); serr != nil {
				return out, err
			}
			continue
		}
		if err == nil && sessionExecuted(out) {
			s.seq++
		}
		return out, err
	}
}

// sessionExecuted reports whether the server consumed the call's seq: any
// well-formed response except a shed (ops never applied), a 404 (session
// gone), or a 409 (seq out of order).
func sessionExecuted(out Outcome) bool {
	return out.Resp.Shed == "" &&
		out.Status != http.StatusNotFound &&
		out.Status != http.StatusConflict &&
		out.Status != http.StatusMethodNotAllowed
}

// Close deletes the session server-side. Closing an already-gone session
// yields a 404 outcome, which callers can treat as success — the session
// is equally dead either way.
func (s *Session) Close(ctx context.Context) (Outcome, error) {
	return s.c.do(ctx, http.MethodDelete, "/v1/session/"+s.id, nil)
}
