//go:build qbfdebug

// Chaos coverage for sticky sessions: deterministic busy-shed and
// eviction via a blocking fault hook, panic retirement with the
// per-mode session breaker, a concurrent seq-claim race on one session
// (total order must match a local simulation), and a cross-session storm
// checked against sequential oracles. Run with -race.
package server

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/result"
)

// TestSessionBusyShedAndEviction pins the memory-governor contract with a
// solver frozen mid-fixpoint: while the only session is busy it cannot be
// evicted (create sheds 429 sessions-full); once idle it is the LRU
// victim for the next create.
func TestSessionBusyShedAndEviction(t *testing.T) {
	blockCh := make(chan struct{})
	var arm atomic.Bool
	arm.Store(true)
	cfg := Config{
		Workers:     1,
		MaxSessions: 1,
		testSolverHook: func(spec *solveSpec, s *core.Solver) {
			if arm.Load() {
				s.SetFaultHook(func(int64) { <-blockCh })
			}
		},
	}
	s, ts := testService(t, cfg)
	a := mustCreate(t, ts.URL, SessionRequest{Formula: phpQDIMACS(3)})

	done := make(chan SolveResponse, 1)
	go func() {
		_, resp := postSession(t, ts.URL, "/v1/session/"+a, SessionSolveRequest{Seq: 1})
		done <- resp
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session solve never reached a fixpoint")
		}
		time.Sleep(time.Millisecond)
	}

	// The store is full and its only session is mid-solve: no victim.
	status, resp := postSession(t, ts.URL, "/v1/session", SessionRequest{Formula: tinyTrue})
	if status != result.StatusTooManyRequests || resp.Shed != ShedSessionsFull.String() {
		t.Fatalf("create while busy: got %d shed=%q, want 429 sessions-full", status, resp.Shed)
	}

	close(blockCh)
	if resp := <-done; resp.Verdict != "FALSE" {
		t.Fatalf("unblocked solve: got %q, want FALSE", resp.Verdict)
	}

	// Now idle, session a is the LRU victim.
	arm.Store(false)
	mustCreate(t, ts.URL, SessionRequest{Formula: tinyTrue})
	if status, _ := postSession(t, ts.URL, "/v1/session/"+a, SessionSolveRequest{Seq: 2}); status != http.StatusNotFound {
		t.Fatalf("evicted session answered %d, want 404", status)
	}
	if st := s.Snapshot().Sessions; st.Evicted != 1 || st.Live != 1 {
		t.Fatalf("snapshot: %+v, want evicted=1 live=1", st)
	}
}

// TestSessionPanicRetirementAndBreaker: a contained solver panic retires
// the session on the spot (its id answers 404), repeated panics open the
// "session:po" breaker, and clearing the fault lets a half-open probe
// close it again.
func TestSessionPanicRetirementAndBreaker(t *testing.T) {
	var poison atomic.Bool
	poison.Store(true)
	cfg := Config{
		Workers: 1,
		Breaker: BreakerConfig{Threshold: 2, Cooldown: 50 * time.Millisecond},
		testSolverHook: func(spec *solveSpec, s *core.Solver) {
			s.SetFaultHook(func(int64) {
				if poison.Load() {
					panic("chaos: injected session fault")
				}
			})
		},
	}
	s, ts := testService(t, cfg)

	id := mustCreate(t, ts.URL, SessionRequest{Formula: phpQDIMACS(3)})
	status, resp := postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{Seq: 1})
	if status != result.StatusInternalError || resp.Stop != "panicked" || resp.Error == "" {
		t.Fatalf("poisoned solve: got %d stop=%q error=%q, want 500 panicked", status, resp.Stop, resp.Error)
	}
	if status, _ := postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{Seq: 2}); status != http.StatusNotFound {
		t.Fatalf("retired session answered %d, want 404", status)
	}

	// Keep knocking until the breaker opens; each attempt burns a fresh
	// session (the previous one was retired by its panic).
	deadline := time.Now().Add(10 * time.Second)
	for {
		id := mustCreate(t, ts.URL, SessionRequest{Formula: phpQDIMACS(3)})
		status, resp := postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{Seq: 1})
		if status == result.StatusUnavailable && resp.Shed == ShedBreakerOpen.String() {
			break
		}
		if status != result.StatusInternalError {
			t.Fatalf("poisoned solve: got %d %+v, want 500 or breaker shed", status, resp)
		}
		if time.Now().After(deadline) {
			t.Fatal("session breaker never opened")
		}
	}
	snap := s.Snapshot()
	if snap.Breakers["session:po"].Trips == 0 {
		t.Fatalf("session:po breaker never tripped: %+v", snap.Breakers)
	}
	if len(snap.Quarantined) != 1 || snap.Quarantined[0] != "session:po" {
		t.Fatalf("quarantined = %v, want [session:po]", snap.Quarantined)
	}

	// Recovery: clear the fault; after the cooldown a half-open probe
	// must succeed and close the breaker.
	poison.Store(false)
	deadline = time.Now().Add(10 * time.Second)
	for {
		id := mustCreate(t, ts.URL, SessionRequest{Formula: phpQDIMACS(3)})
		status, resp := postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{Seq: 1})
		if status == result.StatusOK && resp.Verdict == "FALSE" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session breaker never recovered: last %d %+v", status, resp)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSessionSeqRace hammers ONE session from 8 goroutines that claim
// sequence numbers from a shared counter and retry on 409. The per-session
// mutex plus the seq protocol must impose one total order — so the final
// frame depth has to match a local simulation of the ops in seq order,
// regardless of arrival interleaving.
func TestSessionSeqRace(t *testing.T) {
	_, ts := testService(t, Config{Workers: 1})
	id := mustCreate(t, ts.URL, SessionRequest{Formula: tinyTrue})

	const lastSeq = 40
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, lastSeq)
	opFor := func(seq int64) SessionOp {
		if seq%3 == 0 {
			return SessionOp{Op: "pop"}
		}
		return SessionOp{Op: "push"}
	}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				seq := next.Add(1)
				if seq > lastSeq {
					return
				}
				for {
					status, resp := postSession(t, ts.URL, "/v1/session/"+id,
						SessionSolveRequest{Seq: seq, Ops: []SessionOp{opFor(seq)}})
					if status == http.StatusConflict {
						time.Sleep(time.Millisecond)
						continue
					}
					// pop at depth 0 is a legitimate 400; anything else
					// decided must be the TRUE verdict of tinyTrue.
					if status != result.StatusOK && status != result.StatusBadRequest {
						errs <- fmt.Errorf("seq %d: status %d %+v", seq, status, resp)
					}
					break
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	depth := 0
	for seq := int64(1); seq <= lastSeq; seq++ {
		switch op := opFor(seq); {
		case op.Op == "push":
			depth++
		case depth > 0:
			depth--
		}
	}
	status, resp := postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{Seq: lastSeq + 1})
	if status != result.StatusOK || resp.Verdict != "TRUE" {
		t.Fatalf("final solve: got %d %q", status, resp.Verdict)
	}
	if resp.Depth != depth {
		t.Fatalf("final depth %d, simulation says %d: seq order was violated", resp.Depth, depth)
	}
}

// TestSessionStormOracle runs concurrent full session lifecycles against
// random instances with known oracle verdicts: the initial solve and the
// post-pop solve must both agree with the oracle, with an assumption
// frame solved in between.
func TestSessionStormOracle(t *testing.T) {
	pool := chaosPool(t, 6)
	_, ts := testService(t, Config{Workers: 4})

	const storm = 24
	var wg sync.WaitGroup
	errs := make(chan error, storm*4)
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inst := pool[i%len(pool)]
			status, resp := postSession(t, ts.URL, "/v1/session", SessionRequest{Formula: inst.text})
			if status != result.StatusOK {
				errs <- fmt.Errorf("client %d: create: %d %+v", i, status, resp)
				return
			}
			id := resp.Session

			status, resp = postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{Seq: 1})
			if status != result.StatusOK || resp.Verdict != inst.verdict.String() {
				errs <- fmt.Errorf("client %d seq 1: %d %q, oracle %v", i, status, resp.Verdict, inst.verdict)
			}

			// An assumption frame: any decided verdict is acceptable (the
			// literal may even be universal, forcing FALSE), and a rejected
			// op is fine too — it still consumes the seq.
			lit := (i % 12) + 1
			if i%2 == 1 {
				lit = -lit
			}
			status, resp = postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{
				Seq: 2, Ops: []SessionOp{{Op: "push"}, {Op: "assume", Lits: []int{lit}}}})
			if status != result.StatusOK && status != result.StatusBadRequest {
				errs <- fmt.Errorf("client %d seq 2: %d %+v", i, status, resp)
			}
			if status == result.StatusOK && resp.Verdict != "TRUE" && resp.Verdict != "FALSE" {
				errs <- fmt.Errorf("client %d seq 2: undecided %q", i, resp.Verdict)
			}

			status, resp = postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{
				Seq: 3, Ops: []SessionOp{{Op: "pop"}}})
			if status != result.StatusOK || resp.Verdict != inst.verdict.String() {
				errs <- fmt.Errorf("client %d seq 3 (post-pop): %d %q, oracle %v", i, status, resp.Verdict, inst.verdict)
			}

			if status, _ := deleteSession(t, ts.URL, id); status != result.StatusOK {
				errs <- fmt.Errorf("client %d: close: %d", i, status)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
