package server

import (
	"encoding/json"
	"sync/atomic"

	"repro/internal/journal"
	"repro/internal/telemetry"
)

// The session write-ahead journal (DESIGN.md §13). Frame operations fully
// determine a session's logical state, so journaling every accepted op
// before executing it makes sessions survive process death: on boot the
// recovery manager (recovery.go) replays the surviving records through
// fresh incremental solvers and re-arms each session's idempotency record,
// so a client retrying its in-flight seq gets the recorded (or a
// synthesized interrupted) response and carries on.
//
// Record types and their JSON payloads. The journal package stores them
// as opaque bytes; this file owns the schema.
const (
	// recOpen: a session was created. Written after the id is assigned,
	// before the create response.
	recOpen uint8 = 1
	// recOps: a solve call's frame ops were accepted. Written after the
	// breaker admitted the call and before the first op is applied, so a
	// shed call (which consumes no seq) leaves no trace, while a crash
	// mid-call replays exactly the ops the client is about to retry.
	recOps uint8 = 2
	// recDone: a solve call completed and consumed its seq. Solves do not
	// change logical state, so only {seq, status, response} is logged —
	// enough to re-arm the idempotency record.
	recDone uint8 = 3
	// recClose: a tombstone. Written before the session's state is
	// dropped — DELETE, TTL expiry, LRU eviction, panic retirement, and
	// drain all tombstone, so recovery never resurrects a dead session.
	recClose uint8 = 4
	// recSnapshot: one session's entire live state, written by
	// compaction. Replaces any earlier records for the same id: the
	// create request, the flattened live frame ops (popped frames already
	// dropped), and the idempotency record.
	recSnapshot uint8 = 5
)

type journalOpen struct {
	ID string `json:"id"`
	// Req is the raw create-request body; recovery re-validates it
	// through the same ParseSessionRequest + buildSpec path as a live
	// create.
	Req json.RawMessage `json:"req"`
}

type journalOps struct {
	ID  string      `json:"id"`
	Seq int64       `json:"seq"`
	Ops []SessionOp `json:"ops"`
}

type journalDone struct {
	ID   string          `json:"id"`
	Seq  int64           `json:"seq"`
	Code int             `json:"code"`
	Resp json.RawMessage `json:"resp"`
}

type journalClose struct {
	ID string `json:"id"`
}

type journalSnapshot struct {
	ID  string          `json:"id"`
	Req json.RawMessage `json:"req"`
	// Ops is the session's live op sequence: frames[0] verbatim, then a
	// push before each deeper frame's ops.
	Ops      []SessionOp     `json:"ops,omitempty"`
	LastSeq  int64           `json:"last_seq"`
	LastCode int             `json:"last_code,omitempty"`
	LastResp json.RawMessage `json:"last_resp,omitempty"`
}

// journalState wraps the journal with the server's degradation policy: a
// disk that stops accepting appends must not take session traffic down
// with it. The first append failure flips the store into a visible,
// sticky "degraded: non-durable" mode — requests keep executing (and
// keep their in-memory idempotency), /statusz and /readyz carry the
// marker, and a KindJournal degrade event fires once. All methods are
// nil-receiver safe so the no-journal configuration costs one nil check.
type journalState struct {
	j      *journal.Journal
	tracer *telemetry.Tracer

	degraded atomic.Bool
	appends  atomic.Int64
	errors   atomic.Int64
	// sinceCompact counts appends since the last snapshot compaction; the
	// reaper tick triggers compaction past the configured threshold.
	sinceCompact atomic.Int64
	compactEvery int64

	recoveredSessions int64
	recoveredRecords  int64
}

// append marshals and journals one record, flipping degraded mode on
// failure. It reports whether the record was durably accepted (callers
// never branch on it for serving decisions — degraded mode still serves).
func (js *journalState) append(typ uint8, v any) bool {
	if js == nil || js.j == nil || js.degraded.Load() {
		return false
	}
	data, err := json.Marshal(v)
	if err == nil {
		err = js.j.Append(journal.Record{Type: typ, Data: data})
	}
	if err != nil {
		js.degrade()
		return false
	}
	n := js.appends.Add(1)
	js.sinceCompact.Add(1)
	js.tracer.Emit(telemetry.KindJournal, 0, 0, 0, n)
	return true
}

// degrade flips the store into non-durable mode (idempotent, sticky).
func (js *journalState) degrade() {
	if js == nil {
		return
	}
	js.errors.Add(1)
	if !js.degraded.Swap(true) {
		js.tracer.Emit(telemetry.KindJournal, 0, 0, 1, 0)
	}
}

// isDegraded reports non-durable mode (false when no journal is
// configured: there is nothing to degrade from).
func (js *journalState) isDegraded() bool {
	return js != nil && js.degraded.Load()
}

// close releases the journal; Drain calls it after every session was
// tombstoned.
func (js *journalState) close() {
	if js == nil || js.j == nil {
		return
	}
	if err := js.j.Close(); err != nil {
		js.errors.Add(1)
	}
}

// JournalStats reports the session journal for /statusz.
type JournalStats struct {
	// Enabled is true when a journal directory is configured.
	Enabled bool `json:"enabled"`
	// Degraded marks sticky non-durable mode after a disk failure:
	// sessions still serve, but will not survive a restart.
	Degraded bool `json:"degraded"`
	// Appends and AppendErrors count journal writes since boot.
	Appends      int64 `json:"appends"`
	AppendErrors int64 `json:"append_errors"`
	// RecoveredSessions / RecoveredRecords describe the boot-time replay.
	RecoveredSessions int64 `json:"recovered_sessions"`
	RecoveredRecords  int64 `json:"recovered_records"`
	// TruncatedBytes is what boot recovery dropped truncating a torn or
	// corrupt tail.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// Compactions, Segments, and Bytes describe the on-disk log.
	Compactions int64 `json:"compactions"`
	Segments    int64 `json:"segments"`
	Bytes       int64 `json:"bytes"`
}

func (js *journalState) snapshot() JournalStats {
	if js == nil {
		return JournalStats{}
	}
	st := JournalStats{
		Enabled:           true,
		Degraded:          js.degraded.Load(),
		Appends:           js.appends.Load(),
		AppendErrors:      js.errors.Load(),
		RecoveredSessions: js.recoveredSessions,
		RecoveredRecords:  js.recoveredRecords,
	}
	if js.j != nil {
		jst := js.j.Stats()
		st.TruncatedBytes = jst.TruncatedBytes
		st.Compactions = jst.Compactions
		st.Segments = int64(jst.Segments)
		st.Bytes = jst.Bytes
	}
	return st
}
