package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/result"
)

// phpQDIMACS renders the pigeonhole principle PHP(n+1, n) in QDIMACS: n+1
// pigeons into n holes, purely existential and unsatisfiable, with search
// effort that grows fast in n. The servers' budget tests lean on it to get
// a solve that reliably outlives a tiny budget.
func phpQDIMACS(n int) string {
	pigeons := n + 1
	v := func(p, h int) int { return (p-1)*n + h }
	var clauses []string
	for i := 1; i <= pigeons; i++ {
		var row strings.Builder
		for h := 1; h <= n; h++ {
			fmt.Fprintf(&row, "%d ", v(i, h))
		}
		row.WriteString("0")
		clauses = append(clauses, row.String())
	}
	for h := 1; h <= n; h++ {
		for i := 1; i <= pigeons; i++ {
			for j := i + 1; j <= pigeons; j++ {
				clauses = append(clauses, fmt.Sprintf("%d %d 0", -v(i, h), -v(j, h)))
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "p cnf %d %d\ne ", pigeons*n, len(clauses))
	for i := 1; i <= pigeons*n; i++ {
		fmt.Fprintf(&b, "%d ", i)
	}
	b.WriteString("0\n")
	for _, c := range clauses {
		b.WriteString(c)
		b.WriteString("\n")
	}
	return b.String()
}

// testService spins up a Server behind httptest and tears both down.
func testService(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // best-effort teardown
	})
	return s, ts
}

// postSolve posts a SolveRequest and decodes the response.
func postSolve(t *testing.T, url string, req SolveRequest) (int, SolveResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hresp, err := http.Post(url+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var resp SolveResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		t.Fatalf("status %d with undecodable body: %v", hresp.StatusCode, err)
	}
	return hresp.StatusCode, resp
}

func TestServeVerdicts(t *testing.T) {
	_, ts := testService(t, Config{Workers: 2})
	cases := []struct {
		name    string
		req     SolveRequest
		verdict string
	}{
		{"po true", SolveRequest{Formula: tinyTrue}, "TRUE"},
		{"po false", SolveRequest{Formula: tinyFalse}, "FALSE"},
		{"to true", SolveRequest{Formula: tinyTrue, Mode: "to"}, "TRUE"},
		{"to tree", SolveRequest{Formula: tinyTree, Mode: "to", Strategy: "ed-au"}, "TRUE"},
		{"po tree", SolveRequest{Formula: tinyTree}, "TRUE"},
		{"portfolio", SolveRequest{Formula: tinyFalse, Mode: "portfolio"}, "FALSE"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, resp := postSolve(t, ts.URL, c.req)
			if status != result.StatusOK || resp.Verdict != c.verdict {
				t.Fatalf("got %d %q (stop=%q error=%q), want 200 %q",
					status, resp.Verdict, resp.Stop, resp.Error, c.verdict)
			}
			if resp.Stats == nil {
				t.Fatal("completed solve must report stats")
			}
		})
	}
}

func TestServeWitness(t *testing.T) {
	_, ts := testService(t, Config{Workers: 1})
	status, resp := postSolve(t, ts.URL, SolveRequest{Formula: tinyTrue, Witness: true})
	if status != result.StatusOK || resp.Verdict != "TRUE" {
		t.Fatalf("got %d %q", status, resp.Verdict)
	}
	want := map[int]bool{1: true, -2: true}
	if len(resp.Witness) != 2 || !want[resp.Witness[0]] || !want[resp.Witness[1]] {
		t.Fatalf("witness = %v, want [1 -2]", resp.Witness)
	}
}

func TestServeRejections(t *testing.T) {
	_, ts := testService(t, Config{Workers: 1, MaxBody: 256})
	t.Run("method", func(t *testing.T) {
		hresp, err := http.Get(ts.URL + "/solve")
		if err != nil {
			t.Fatal(err)
		}
		hresp.Body.Close()
		if hresp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /solve = %d, want 405", hresp.StatusCode)
		}
	})
	t.Run("bad json", func(t *testing.T) {
		hresp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader("{oops"))
		if err != nil {
			t.Fatal(err)
		}
		defer hresp.Body.Close()
		var resp SolveResponse
		if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if hresp.StatusCode != result.StatusBadRequest || resp.Error == "" {
			t.Fatalf("got %d %+v, want 400 with error", hresp.StatusCode, resp)
		}
	})
	t.Run("bad formula", func(t *testing.T) {
		status, resp := postSolve(t, ts.URL, SolveRequest{Formula: "p cnf zz"})
		if status != result.StatusBadRequest || resp.Error == "" {
			t.Fatalf("got %d %+v, want 400", status, resp)
		}
	})
	t.Run("oversized body", func(t *testing.T) {
		big := SolveRequest{Formula: phpQDIMACS(6)}
		body, _ := json.Marshal(big)
		hresp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		hresp.Body.Close()
		if hresp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("got %d, want 413", hresp.StatusCode)
		}
	})
}

func TestServeBudgetStops(t *testing.T) {
	_, ts := testService(t, Config{Workers: 1})
	t.Run("node limit is 422", func(t *testing.T) {
		status, resp := postSolve(t, ts.URL, SolveRequest{Formula: phpQDIMACS(8), MaxNodes: 1})
		if status != result.StatusUnprocessable || resp.Verdict != "UNKNOWN" || resp.Stop != "node-limit" {
			t.Fatalf("got %d %q stop=%q, want 422 UNKNOWN node-limit", status, resp.Verdict, resp.Stop)
		}
	})
	t.Run("timeout is 504", func(t *testing.T) {
		status, resp := postSolve(t, ts.URL, SolveRequest{Formula: phpQDIMACS(10), MaxTimeMS: 1})
		if status != result.StatusTimeout || resp.Stop != "timeout" {
			t.Fatalf("got %d stop=%q, want 504 timeout", status, resp.Stop)
		}
	})
	t.Run("server cap clamps an unlimited ask", func(t *testing.T) {
		// The request asks for no budget at all; the server cap must stop
		// the solve anyway.
		_, ts2 := testService(t, Config{Workers: 1, Caps: Caps{MaxNodes: 1}})
		status, resp := postSolve(t, ts2.URL, SolveRequest{Formula: phpQDIMACS(8)})
		if status != result.StatusUnprocessable || resp.Stop != "node-limit" {
			t.Fatalf("got %d stop=%q, want 422 node-limit", status, resp.Stop)
		}
	})
}

// gatedService builds a 1-worker server whose solver hook blocks until
// released, so tests can hold the worker busy deterministically.
func gatedService(t *testing.T, cfg Config) (*Server, *httptest.Server, chan struct{}, chan struct{}) {
	t.Helper()
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	cfg.testSolverHook = func(spec *solveSpec, s *core.Solver) {
		entered <- struct{}{}
		<-release
	}
	s, ts := testService(t, cfg)
	return s, ts, entered, release
}

func TestServeQueueFull(t *testing.T) {
	s, ts, entered, release := gatedService(t, Config{Workers: 1, QueueDepth: 1, QueueTimeout: time.Minute})
	done := make(chan int, 2)
	post := func() {
		status, _ := postSolve(t, ts.URL, SolveRequest{Formula: tinyTrue})
		done <- status
	}
	// First request occupies the lone worker (blocked in the hook)...
	go post()
	<-entered
	// ...second fills the one-deep queue...
	go post()
	waitFor(t, func() bool { return s.Snapshot().QueueDepth == 1 })
	// ...so the third must be shed with 429 + Retry-After.
	body, _ := json.Marshal(SolveRequest{Formula: tinyTrue})
	hresp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var resp SolveResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if hresp.StatusCode != result.StatusTooManyRequests || resp.Shed != "queue-full" {
		t.Fatalf("got %d shed=%q, want 429 queue-full", hresp.StatusCode, resp.Shed)
	}
	if hresp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	close(release)
	for i := 0; i < 2; i++ {
		if st := <-done; st != result.StatusOK {
			t.Fatalf("admitted request finished %d, want 200", st)
		}
	}
}

func TestServeQueueDeadline(t *testing.T) {
	_, ts, entered, release := gatedService(t, Config{Workers: 1, QueueDepth: 4, QueueTimeout: 20 * time.Millisecond})
	first := make(chan int, 1)
	go func() {
		st, _ := postSolve(t, ts.URL, SolveRequest{Formula: tinyTrue})
		first <- st
	}()
	<-entered
	second := make(chan SolveResponse, 1)
	secondStatus := make(chan int, 1)
	go func() {
		st, resp := postSolve(t, ts.URL, SolveRequest{Formula: tinyTrue})
		secondStatus <- st
		second <- resp
	}()
	// Hold the worker past the queue deadline, then release: the queued
	// request must be shed unsolved.
	time.Sleep(60 * time.Millisecond)
	close(release)
	if st := <-secondStatus; st != result.StatusUnavailable {
		t.Fatalf("overdue queued request got %d, want 503", st)
	}
	if resp := <-second; resp.Shed != "queue-deadline" {
		t.Fatalf("shed = %q, want queue-deadline", resp.Shed)
	}
	if st := <-first; st != result.StatusOK {
		t.Fatalf("in-flight request got %d, want 200", st)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s, ts := testService(t, Config{Workers: 1})
	get := func(path string) int {
		hresp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		hresp.Body.Close()
		return hresp.StatusCode
	}
	if st := get("/healthz"); st != http.StatusOK {
		t.Fatalf("/healthz = %d", st)
	}
	if st := get("/readyz"); st != http.StatusOK {
		t.Fatalf("/readyz = %d", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
	if st := get("/healthz"); st != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200 (liveness is not readiness)", st)
	}
	if st := get("/readyz"); st != result.StatusUnavailable {
		t.Fatalf("/readyz after drain = %d, want 503", st)
	}
	// New solve requests shed with 503/draining.
	status, resp := postSolve(t, ts.URL, SolveRequest{Formula: tinyTrue})
	if status != result.StatusUnavailable || resp.Shed != "draining" {
		t.Fatalf("post-drain solve: %d shed=%q, want 503 draining", status, resp.Shed)
	}
}

func TestDrainWaitsForInFlight(t *testing.T) {
	s, ts, entered, release := gatedService(t, Config{Workers: 1, QueueTimeout: time.Minute})
	got := make(chan int, 1)
	go func() {
		st, _ := postSolve(t, ts.URL, SolveRequest{Formula: tinyTrue})
		got <- st
	}()
	<-entered
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitFor(t, s.Draining)
	select {
	case err := <-drained:
		t.Fatalf("drain finished with request in flight: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := <-got; st != result.StatusOK {
		t.Fatalf("in-flight request during drain got %d, want 200", st)
	}
}

func TestDrainDeadlineForcesCancellation(t *testing.T) {
	s, ts, entered, release := gatedService(t, Config{Workers: 1, QueueTimeout: time.Minute})
	got := make(chan SolveResponse, 1)
	gotStatus := make(chan int, 1)
	go func() {
		// A hard instance with no budget: only cancellation can stop it.
		st, resp := postSolve(t, ts.URL, SolveRequest{Formula: phpQDIMACS(10)})
		gotStatus <- st
		got <- resp
	}()
	<-entered
	// Drain with an already-expired deadline: the server must force-cancel.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(ctx) }()
	waitFor(t, s.Draining)
	time.Sleep(20 * time.Millisecond) // let the drain loop hit forceCancel
	close(release)                    // the solver now starts — and sees a dead context
	if err := <-drained; err != ErrDrainForced {
		t.Fatalf("drain = %v, want ErrDrainForced", err)
	}
	if st := <-gotStatus; st != result.StatusUnavailable {
		t.Fatalf("cancelled solve got %d, want 503", st)
	}
	if resp := <-got; resp.Stop != "cancelled" {
		t.Fatalf("stop = %q, want cancelled", resp.Stop)
	}
}

func TestStatusz(t *testing.T) {
	_, ts := testService(t, Config{Workers: 1})
	postSolve(t, ts.URL, SolveRequest{Formula: tinyTrue})
	postSolve(t, ts.URL, SolveRequest{Formula: tinyFalse, Mode: "to"})
	hresp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var st Stats
	if err := json.NewDecoder(hresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Admitted != 2 || st.Completed != 2 || st.Panics != 0 || st.Draining {
		t.Fatalf("stats = %+v", st)
	}
	if st.Breakers["po"].State != "closed" || st.Breakers["to:eu-au"].State != "closed" {
		t.Fatalf("breakers = %+v", st.Breakers)
	}
	if len(st.Quarantined) != 0 {
		t.Fatalf("quarantined = %v, want none", st.Quarantined)
	}
}

// waitFor polls cond for up to 2 s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
