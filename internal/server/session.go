package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/qbf"
	"repro/internal/result"
	"repro/internal/telemetry"
)

// Sticky sessions expose the core incremental API (Push/Pop/AddClause/
// Assume between Solve calls) over HTTP:
//
//	POST   /v1/session        open a session over one formula
//	POST   /v1/session/<id>   apply frame ops, then solve (seq-idempotent)
//	DELETE /v1/session/<id>   close the session
//
// A session pins one core.Solver for its lifetime, so its learned clauses
// (and their frame tags) persist across calls — the entire point of the
// API. That pinned state is what makes sessions "sticky" and what the
// store has to govern:
//
//   - concurrency: a per-session mutex serializes solve calls; concurrent
//     calls against one session queue behind each other rather than
//     interleaving frame ops;
//   - idempotency: each call carries a client sequence number; a retry of
//     the last executed call replays its recorded response instead of
//     re-applying ops (which would not be idempotent: pop twice ≠ pop);
//   - memory: the session count is capped; opening a session beyond the
//     cap evicts the least-recently-used idle session (one whose mutex is
//     free — an in-flight solve is never evicted), and sheds with 429
//     when every session is busy;
//   - lifetime: a reaper expires sessions idle past the TTL, and Drain
//     closes every session after in-flight calls finish;
//   - containment: session solves run under SafeSolve with a per-mode
//     "session:<mode>" circuit breaker; a contained panic poisons the
//     solver state beyond recovery, so the session is closed on the spot.
type sessionStore struct {
	cfg Config
	srv *Server
	// jr is the write-ahead journal envelope (nil-safe; see journal.go).
	// Every accepted op is journaled before execution and every teardown
	// path appends a tombstone before dropping state, so boot recovery
	// (recovery.go) reconstructs exactly the sessions that were live.
	jr *journalState

	mu       sync.Mutex
	sessions map[string]*session
	nextID   uint64
	created  int64
	expired  int64
	evicted  int64
	closed   int64
}

// session is one sticky incremental solver and its idempotency record.
type session struct {
	id   string
	mode string // breaker/quarantine key suffix ("po", "to:eu-au", ...)

	// createReq is the raw create-request body, retained for journal
	// snapshots (compaction re-journals it with the live ops).
	createReq json.RawMessage

	// mu serializes calls; the evictor uses TryLock so an in-flight solve
	// is never evicted. Fields below are guarded by it.
	mu       sync.Mutex
	solver   *core.Solver
	maxNodes int64 // per-solve decision budget (0 = none); re-armed per call
	lastSeq  int64
	lastResp SolveResponse // response of lastSeq, for idempotent replay
	lastCode int
	closed   bool
	// frames mirrors the solver's live frame ops for snapshot compaction:
	// frames[0] holds ops applied outside any push, each push opens a new
	// entry, and pop drops the deepest — so popped frames cost nothing in
	// a compacted journal.
	frames [][]SessionOp

	// lastUsed is guarded by the store mutex (the LRU scan reads it while
	// holding only the store lock).
	lastUsed time.Time
}

func newSessionStore(cfg Config, srv *Server) *sessionStore {
	return &sessionStore{cfg: cfg, srv: srv, sessions: map[string]*session{}}
}

// handleCreate serves POST /v1/session.
func (st *sessionStore) handleCreate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, SolveResponse{Error: "POST a SessionRequest to /v1/session"})
		return
	}
	body, ok := st.srv.readBody(w, r)
	if !ok {
		return
	}
	req, err := ParseSessionRequest(body)
	if err != nil {
		writeJSON(w, result.StatusBadRequest, SolveResponse{Error: err.Error()})
		return
	}
	spec, err := sessionSpec(req, st.cfg.Caps)
	if err != nil {
		writeJSON(w, result.StatusBadRequest, SolveResponse{Error: err.Error()})
		return
	}
	spec.opt.Telemetry = st.cfg.Tracer
	spec.opt.Incremental = true

	// The per-solve node budget is re-armed before every call (NodeLimit
	// is cumulative over a solver's lifetime); stash it and disarm.
	maxNodes := spec.opt.NodeLimit
	spec.opt.NodeLimit = 0

	solver, err := core.NewSolver(spec.q, spec.opt)
	if err != nil {
		writeJSON(w, result.StatusBadRequest, SolveResponse{Error: err.Error()})
		return
	}
	if st.cfg.testSolverHook != nil {
		st.cfg.testSolverHook(spec, solver)
	}

	sess := &session{
		mode: spec.key, solver: solver, maxNodes: maxNodes,
		createReq: body, frames: [][]SessionOp{nil},
	}
	if !st.admit(sess) {
		st.srv.writeShed(w, ShedSessionsFull, result.StatusTooManyRequests)
		return
	}
	st.jr.append(recOpen, journalOpen{ID: sess.id, Req: body})
	writeJSON(w, result.StatusOK, SolveResponse{Session: sess.id})
}

// sessionSpec validates a session-create request into a solve spec (the
// shared path for live creates and boot recovery).
func sessionSpec(req *SessionRequest, caps Caps) (*solveSpec, error) {
	if req.Mode == "portfolio" {
		return nil, fmt.Errorf("sessions pin one solver; mode \"portfolio\" is not supported")
	}
	return buildSpec(&SolveRequest{
		Formula:   req.Formula,
		Mode:      req.Mode,
		Strategy:  req.Strategy,
		MaxTimeMS: req.MaxTimeMS,
		MaxNodes:  req.MaxNodes,
		MaxMemMB:  req.MaxMemMB,
	}, caps)
}

// admit registers a fresh session, evicting the LRU idle session when the
// store is full. It reports false when every session is busy solving (the
// caller sheds with 429).
func (st *sessionStore) admit(sess *session) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	for len(st.sessions) >= st.cfg.MaxSessions {
		victim := st.lruIdleLocked()
		if victim == nil {
			return false
		}
		// Tombstone before dropping state: if the process dies between the
		// append and the delete, recovery closes a session that was about
		// to be evicted anyway — the reverse order would resurrect it.
		st.jr.append(recClose, journalClose{ID: victim.id})
		delete(st.sessions, victim.id)
		st.evicted++
		victim.closed = true
		victim.solver = nil
		victim.mu.Unlock()
		st.emit(4, len(st.sessions))
	}
	st.nextID++
	sess.id = "s" + strconv.FormatUint(st.nextID, 36)
	sess.lastUsed = time.Now()
	st.sessions[sess.id] = sess
	st.created++
	st.emit(0, len(st.sessions))
	return true
}

// lruIdleLocked returns the least-recently-used session whose mutex could
// be acquired, still holding that mutex (the caller closes and unlocks),
// or nil when every session is mid-call.
func (st *sessionStore) lruIdleLocked() *session {
	var cands []*session
	for _, s := range st.sessions {
		cands = append(cands, s)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].lastUsed.Before(cands[j].lastUsed) })
	for _, s := range cands {
		if s.mu.TryLock() {
			return s
		}
	}
	return nil
}

// handleSession serves POST (ops+solve) and DELETE (close) on
// /v1/session/<id>.
func (st *sessionStore) handleSession(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/session/")
	if id == "" || strings.Contains(id, "/") {
		writeJSON(w, http.StatusNotFound, SolveResponse{Error: "no such session"})
		return
	}
	switch r.Method {
	case http.MethodDelete:
		st.close(w, id)
	case http.MethodPost:
		st.solve(w, r, id)
	default:
		writeJSON(w, http.StatusMethodNotAllowed, SolveResponse{Error: "POST ops or DELETE to /v1/session/<id>"})
	}
}

func (st *sessionStore) lookup(id string) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.sessions[id]
	if s != nil {
		s.lastUsed = time.Now()
	}
	return s
}

func (st *sessionStore) close(w http.ResponseWriter, id string) {
	st.mu.Lock()
	sess := st.sessions[id]
	if sess == nil {
		st.mu.Unlock()
		writeJSON(w, http.StatusNotFound, SolveResponse{Error: "no such session"})
		return
	}
	st.jr.append(recClose, journalClose{ID: id})
	delete(st.sessions, id)
	st.closed++
	live := len(st.sessions)
	st.mu.Unlock()

	// Wait for an in-flight call to finish before releasing the solver.
	sess.mu.Lock()
	sess.closed = true
	sess.solver = nil
	sess.mu.Unlock()
	st.emit(2, live)
	writeJSON(w, result.StatusOK, SolveResponse{Session: id})
}

func (st *sessionStore) solve(w http.ResponseWriter, r *http.Request, id string) {
	body, ok := st.srv.readBody(w, r)
	if !ok {
		return
	}
	req, err := ParseSessionSolveRequest(body)
	if err != nil {
		writeJSON(w, result.StatusBadRequest, SolveResponse{Error: err.Error()})
		return
	}
	sess := st.lookup(id)
	if sess == nil {
		writeJSON(w, http.StatusNotFound, SolveResponse{Error: "no such session"})
		return
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		// Lost the race with close/evict between lookup and lock.
		writeJSON(w, http.StatusNotFound, SolveResponse{Error: "no such session"})
		return
	}
	switch {
	case req.Seq == sess.lastSeq && req.Seq > 0:
		// Idempotent replay of the last executed call.
		resp := sess.lastResp
		resp.Replayed = true
		writeJSON(w, sess.lastCode, resp)
		return
	case req.Seq != sess.lastSeq+1:
		writeJSON(w, http.StatusConflict, SolveResponse{
			Session: id, Depth: sess.solver.FrameDepth(),
			Error: fmt.Sprintf("seq %d out of order (last executed %d)", req.Seq, sess.lastSeq)})
		return
	}

	status, resp, executed := st.execute(r, sess, req)
	resp.Session = id
	if executed {
		// A shed (breaker open) applied no ops, so it must not consume
		// the seq: the client retries the same seq and the ops run then.
		sess.lastSeq = req.Seq
		sess.lastResp = resp
		sess.lastCode = status
		// Solves do not change logical state, so the journal only needs
		// the idempotency record: on recovery a retried seq replays this
		// response instead of re-running anything.
		if data, err := json.Marshal(resp); err == nil {
			st.jr.append(recDone, journalDone{ID: id, Seq: req.Seq, Code: status, Resp: data})
		}
	}
	writeJSON(w, status, resp)

	if status == result.StatusInternalError {
		// A contained panic leaves the solver state unusable; retire the
		// session (its id keeps answering 404 from now on).
		sess.closed = true
		sess.solver = nil
		st.mu.Lock()
		st.jr.append(recClose, journalClose{ID: id})
		delete(st.sessions, id)
		st.closed++
		live := len(st.sessions)
		st.mu.Unlock()
		st.emit(2, live)
	}
}

// execute applies the request's ops and runs the solve under the session
// breaker, full containment, and the server drain context. The caller
// holds the session mutex. The executed result is false only when the
// call was shed before any op was applied (the seq is then not consumed).
func (st *sessionStore) execute(r *http.Request, sess *session, req *SessionSolveRequest) (int, SolveResponse, bool) {
	srv := st.srv
	key := "session:" + sess.mode
	br := srv.breakerFor(key)
	tk, ok := br.Admit()
	if !ok {
		srv.shed[ShedBreakerOpen].Add(1)
		srv.emit(telemetry.KindShed, int64(ShedBreakerOpen), 0)
		return result.StatusUnavailable, SolveResponse{Shed: ShedBreakerOpen.String(),
			Error: "load shed: " + ShedBreakerOpen.String()}, false
	}

	// Journal the accepted call before executing anything: a crash from
	// here on replays exactly the ops the client will retry. Appending
	// after the breaker admit keeps shed calls (which consume no seq and
	// apply no ops) out of the journal.
	if len(req.Ops) > 0 {
		st.jr.append(recOps, journalOps{ID: sess.id, Seq: req.Seq, Ops: req.Ops})
	}
	for i, op := range req.Ops {
		if err := applyOp(sess.solver, op); err != nil {
			br.Cancel(tk)
			// Earlier ops did apply, so this rejection consumes the seq.
			// Recovery reproduces the partial application: replaying the
			// journaled ops fails at this same op.
			return result.StatusBadRequest, SolveResponse{
				Depth: sess.solver.FrameDepth(),
				Error: fmt.Sprintf("op %d (%s): %v", i, op.Op, err)}, true
		}
		sess.trackOp(op)
	}

	if sess.maxNodes > 0 {
		sess.solver.SetNodeLimit(sess.solver.Stats().Decisions + sess.maxNodes)
	}
	ctx, cancel := srv.mergeCtx(r.Context())
	srv.active.Add(1)
	start := time.Now()
	before := sess.solver.Stats()
	v, err := sess.solver.SafeSolve(ctx)
	elapsed := time.Since(start)
	srv.active.Add(-1)
	cancel()
	stats := sess.solver.Stats()

	if err != nil {
		br.Done(tk, false)
		srv.panics.Add(1)
		srv.mu.Lock()
		srv.quarantine[key]++
		srv.mu.Unlock()
		resp := solveResponse(result.Unknown, result.StopPanicked, stats, nil, err)
		resp.SolveMS = elapsed.Milliseconds()
		return result.StatusInternalError, resp, true
	}
	br.Done(tk, true)

	var wit []int
	if req.Witness && v == core.True {
		if model, has := sess.solver.Witness(); has {
			wit = witnessInts(model, maxWitnessVar(model))
		}
	}
	resp := solveResponse(v, stats.StopReason, stats, wit, nil)
	resp.Depth = sess.solver.FrameDepth()
	resp.SolveMS = elapsed.Milliseconds()
	resp.Stats.Decisions = stats.Decisions - before.Decisions
	resp.Stats.Propagations = stats.Propagations - before.Propagations
	resp.Stats.Conflicts = stats.Conflicts - before.Conflicts
	resp.Stats.Solutions = stats.Solutions - before.Solutions
	resp.Stats.Fixpoints = stats.Fixpoints - before.Fixpoints
	st.emit(1, st.live())
	return result.HTTPStatus(v, stats.StopReason), resp, true
}

// applyOp maps one wire-format frame operation onto the solver.
func applyOp(s *core.Solver, op SessionOp) error {
	switch op.Op {
	case "push":
		if len(op.Lits) != 0 {
			return fmt.Errorf("push takes no literals")
		}
		_, err := s.Push()
		return err
	case "pop":
		if len(op.Lits) != 0 {
			return fmt.Errorf("pop takes no literals")
		}
		_, err := s.Pop()
		return err
	case "add":
		return s.AddClause(toLits(op.Lits))
	case "assume":
		return s.Assume(toLits(op.Lits)...)
	default:
		return fmt.Errorf("unknown op %q (want push, pop, add, or assume)", op.Op)
	}
}

func toLits(ints []int) []qbf.Lit {
	lits := make([]qbf.Lit, len(ints))
	for i, n := range ints {
		if n != 0 {
			lits[i] = qbf.LitOf(n)
		}
		// A wire 0 stays the zero value: AddClause/Assume reject it with
		// a client error, where LitOf would panic on untrusted input.
	}
	return lits
}

// maxWitnessVar sizes the witness flattening (sessions do not retain the
// original QBF, only the solver).
func maxWitnessVar(model map[qbf.Var]bool) int {
	max := 0
	for v := range model {
		if v.Int() > max {
			max = v.Int()
		}
	}
	return max
}

// live returns the current session count.
func (st *sessionStore) live() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sessions)
}

// reap closes sessions idle past the TTL. Called periodically by the
// server's reaper goroutine.
func (st *sessionStore) reap(now time.Time) {
	var victims []*session
	st.mu.Lock()
	for id, s := range st.sessions {
		if now.Sub(s.lastUsed) > st.cfg.SessionTTL {
			// Tombstone before dropping state (see admit).
			st.jr.append(recClose, journalClose{ID: id})
			delete(st.sessions, id)
			st.expired++
			victims = append(victims, s)
		}
	}
	live := len(st.sessions)
	st.mu.Unlock()
	for _, s := range victims {
		s.mu.Lock()
		s.closed = true
		s.solver = nil
		s.mu.Unlock()
		st.emit(3, live)
	}
}

// closeAll retires every session; Drain calls it after in-flight requests
// finish (taking each mutex waits out any straggler).
func (st *sessionStore) closeAll() {
	st.mu.Lock()
	var all []*session
	for id, s := range st.sessions {
		// A drain intentionally closes every session, so each one is
		// tombstoned: a restart after a clean shutdown recovers nothing,
		// matching the wire protocol (clients saw their sessions die).
		st.jr.append(recClose, journalClose{ID: id})
		delete(st.sessions, id)
		st.closed++
		all = append(all, s)
	}
	st.mu.Unlock()
	for _, s := range all {
		s.mu.Lock()
		s.closed = true
		s.solver = nil
		s.mu.Unlock()
	}
	if len(all) > 0 {
		st.emit(2, 0)
	}
}

// snapshot reports the session counters for /statusz.
func (st *sessionStore) snapshot() SessionStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return SessionStats{
		Live:    int64(len(st.sessions)),
		Created: st.created,
		Closed:  st.closed,
		Expired: st.expired,
		Evicted: st.evicted,
	}
}

func (st *sessionStore) emit(event int64, live int) {
	st.cfg.Tracer.Emit(telemetry.KindSession, 0, 0, event, int64(live))
}

// trackOp mirrors one successfully applied op into the session's live
// frame record (the compaction snapshot source). The caller holds the
// session mutex.
func (sess *session) trackOp(op SessionOp) {
	switch op.Op {
	case "push":
		sess.frames = append(sess.frames, nil)
	case "pop":
		if n := len(sess.frames); n > 1 {
			sess.frames = sess.frames[:n-1]
		}
	default:
		i := len(sess.frames) - 1
		sess.frames[i] = append(sess.frames[i], op)
	}
}

// liveOps flattens the session's live frames into the op sequence that
// reconstructs its solver from a fresh create: frames[0] verbatim, then a
// push before each deeper frame. Popped frames are already gone — that is
// what makes a compacted journal smaller than its history.
func (sess *session) liveOps() []SessionOp {
	var out []SessionOp
	for i, fr := range sess.frames {
		if i > 0 {
			out = append(out, SessionOp{Op: "push"})
		}
		out = append(out, fr...)
	}
	return out
}

// maybeCompact rewrites the journal as one snapshot record per live
// session once enough appends have accumulated. Every session must be
// idle — the snapshot has to capture a consistent cut, so the store and
// all session locks are held across the journal.Compact call and the
// round is skipped if any session is mid-solve (the next reaper tick
// retries). Called from the server's reaper goroutine.
func (st *sessionStore) maybeCompact() {
	jr := st.jr
	if jr == nil || jr.j == nil || jr.isDegraded() || jr.sinceCompact.Load() < jr.compactEvery {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	var locked []*session
	defer func() {
		for _, s := range locked {
			s.mu.Unlock()
		}
	}()
	for _, s := range st.sessions {
		if !s.mu.TryLock() {
			return // a session is busy; retry next tick
		}
		locked = append(locked, s)
	}
	recs := make([]journal.Record, 0, len(locked))
	for _, s := range locked {
		snap := journalSnapshot{
			ID: s.id, Req: s.createReq, Ops: s.liveOps(),
			LastSeq: s.lastSeq, LastCode: s.lastCode,
		}
		if resp, err := json.Marshal(s.lastResp); err == nil {
			snap.LastResp = resp
		}
		data, err := json.Marshal(snap)
		if err != nil {
			jr.degrade()
			return
		}
		recs = append(recs, journal.Record{Type: recSnapshot, Data: data})
	}
	if err := jr.j.Compact(recs); err != nil {
		jr.degrade()
		return
	}
	jr.sinceCompact.Store(0)
	st.cfg.Tracer.Emit(telemetry.KindJournal, 0, 0, 3, int64(len(recs)))
}
