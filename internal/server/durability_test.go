package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/result"
)

// crashStop halts the server the way kill -9 would have: no drain, no
// session tombstones — the journal is simply released with whatever was
// written so far. Recovery tests boot a second server over the same
// directory to stand in for the restarted process.
func (s *Server) crashStop() {
	s.draining.Store(true)
	s.stopOnce.Do(func() { close(s.stopWorkers) })
	s.workers.Wait()
	if jr := s.sessions.jr; jr != nil && jr.j != nil {
		jr.j.Close() //nolint:errcheck // simulated crash; the fd just goes away
	}
}

// journaledService is testService plus a journal over dir; teardown is a
// clean drain (which tombstones, so use crashService for recovery tests).
func journaledService(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.JournalDir = dir
	if cfg.JournalFsync == "" {
		cfg.JournalFsync = "always"
	}
	return testService(t, cfg)
}

// crashService is journaledService with crash teardown.
func crashService(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.JournalDir = dir
	if cfg.JournalFsync == "" {
		cfg.JournalFsync = "always"
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.crashStop()
	})
	return s, ts
}

// TestSessionJournalRecovery is the core crash-tolerance contract: after
// an unclean death, a restarted server replays the journal, rebuilds the
// session's solver state, re-arms the idempotency record so a retried seq
// gets the recorded response, and the ladder continues where it left off.
func TestSessionJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := crashService(t, dir, Config{Workers: 1})
	id := mustCreate(t, ts1.URL, SessionRequest{Formula: tinyTrue})

	if status, resp := postSession(t, ts1.URL, "/v1/session/"+id, SessionSolveRequest{Seq: 1}); status != result.StatusOK || resp.Verdict != "TRUE" {
		t.Fatalf("seq 1: got %d %q", status, resp.Verdict)
	}
	status, resp := postSession(t, ts1.URL, "/v1/session/"+id, SessionSolveRequest{
		Seq: 2, Ops: []SessionOp{{Op: "push"}, {Op: "add", Lits: []int{-1}}}})
	if status != result.StatusOK || resp.Verdict != "FALSE" || resp.Depth != 1 {
		t.Fatalf("seq 2: got %d %q depth=%d", status, resp.Verdict, resp.Depth)
	}
	ts1.Close()
	s1.crashStop()

	s2, ts2 := journaledService(t, dir, Config{Workers: 1})
	jst := s2.Snapshot().Journal
	if !jst.Enabled || jst.Degraded || jst.RecoveredSessions != 1 || jst.RecoveredRecords < 4 {
		t.Fatalf("journal after recovery: %+v", jst)
	}

	// A client that never saw seq 2's response retries it: the recovered
	// idempotency record must replay the recorded outcome verbatim.
	status, resp = postSession(t, ts2.URL, "/v1/session/"+id, SessionSolveRequest{
		Seq: 2, Ops: []SessionOp{{Op: "push"}, {Op: "add", Lits: []int{-1}}}})
	if status != result.StatusOK || resp.Verdict != "FALSE" || !resp.Replayed || resp.Depth != 1 {
		t.Fatalf("seq 2 retry after restart: got %d %q replayed=%v depth=%d error=%q",
			status, resp.Verdict, resp.Replayed, resp.Depth, resp.Error)
	}
	// The ladder continues on the rebuilt solver: popping the frame must
	// restore the base verdict, proving the frame ops were replayed.
	status, resp = postSession(t, ts2.URL, "/v1/session/"+id, SessionSolveRequest{
		Seq: 3, Ops: []SessionOp{{Op: "pop"}}})
	if status != result.StatusOK || resp.Verdict != "TRUE" || resp.Depth != 0 {
		t.Fatalf("seq 3 after restart: got %d %q depth=%d error=%q", status, resp.Verdict, resp.Depth, resp.Error)
	}
}

// TestSessionRestartAfterEvict pins the eviction-tombstone fix: a session
// evicted (LRU) before the crash must not be resurrected by recovery, and
// fresh ids must not collide with recovered ones.
func TestSessionRestartAfterEvict(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := crashService(t, dir, Config{Workers: 1, MaxSessions: 1})
	id1 := mustCreate(t, ts1.URL, SessionRequest{Formula: tinyTrue})
	id2 := mustCreate(t, ts1.URL, SessionRequest{Formula: tinyTrue}) // evicts id1
	if id1 == id2 {
		t.Fatalf("expected distinct ids, got %q twice", id1)
	}
	if status, resp := postSession(t, ts1.URL, "/v1/session/"+id2, SessionSolveRequest{Seq: 1}); status != result.StatusOK || resp.Verdict != "TRUE" {
		t.Fatalf("id2 seq 1: got %d %q", status, resp.Verdict)
	}
	ts1.Close()
	s1.crashStop()

	s2, ts2 := journaledService(t, dir, Config{Workers: 1, MaxSessions: 1})
	if got := s2.Snapshot().Journal.RecoveredSessions; got != 1 {
		t.Fatalf("recovered %d sessions, want 1 (evicted session must stay dead)", got)
	}
	if status, _ := postSession(t, ts2.URL, "/v1/session/"+id1, SessionSolveRequest{Seq: 1}); status != http.StatusNotFound {
		t.Fatalf("evicted session after restart: got %d, want 404", status)
	}
	if status, resp := postSession(t, ts2.URL, "/v1/session/"+id2, SessionSolveRequest{Seq: 1}); status != result.StatusOK || !resp.Replayed {
		t.Fatalf("id2 seq 1 retry after restart: got %d replayed=%v", status, resp.Replayed)
	}
	// A fresh create must mint an id beyond every journaled one.
	if id3 := mustCreate(t, ts2.URL, SessionRequest{Formula: tinyTrue}); id3 == id1 || id3 == id2 {
		t.Fatalf("fresh id %q collides with a recovered id", id3)
	}
}

// TestJournalDegradedServes is the degradation acceptance criterion: when
// the journal disk fails mid-flight, the store flips to visible
// non-durable mode and keeps serving — zero requests shed, /readyz and
// /statusz carry the marker.
func TestJournalDegradedServes(t *testing.T) {
	dir := t.TempDir()
	s, ts := journaledService(t, dir, Config{Workers: 1})
	id := mustCreate(t, ts.URL, SessionRequest{Formula: tinyTrue})
	if status, _ := postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{Seq: 1}); status != result.StatusOK {
		t.Fatalf("seq 1: got %d", status)
	}

	// The disk dies: every subsequent append fails.
	s.sessions.jr.j.Close() //nolint:errcheck // simulating a failed journal disk

	status, resp := postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{
		Seq: 2, Ops: []SessionOp{{Op: "push"}, {Op: "add", Lits: []int{-1}}}})
	if status != result.StatusOK || resp.Verdict != "FALSE" || resp.Shed != "" {
		t.Fatalf("solve after disk failure: got %d %q shed=%q", status, resp.Verdict, resp.Shed)
	}
	if id2 := mustCreate(t, ts.URL, SessionRequest{Formula: tinyTrue}); id2 == "" {
		t.Fatal("create after disk failure failed")
	}

	st := s.Snapshot()
	if !st.Journal.Degraded || st.Journal.AppendErrors == 0 {
		t.Fatalf("journal stats after disk failure: %+v", st.Journal)
	}
	for reason, n := range st.Shed {
		if n != 0 {
			t.Fatalf("degraded mode shed %d requests (%s); must shed zero", n, reason)
		}
	}
	hresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || string(body) != "ready degraded:non-durable\n" {
		t.Fatalf("/readyz in degraded mode: %d %q", hresp.StatusCode, body)
	}
}

// TestJournalOpenFailureDegrades: an unusable journal directory at boot
// must not stop the server — it comes up degraded and serves.
func TestJournalOpenFailureDegrades(t *testing.T) {
	// A file where the directory should be makes MkdirAll fail.
	dir := t.TempDir() + "/occupied"
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, ts := testService(t, Config{Workers: 1, JournalDir: dir, JournalFsync: "always"})
	if jst := s.Snapshot().Journal; !jst.Enabled || !jst.Degraded {
		t.Fatalf("journal stats with unusable dir: %+v", jst)
	}
	id := mustCreate(t, ts.URL, SessionRequest{Formula: tinyTrue})
	if status, resp := postSession(t, ts.URL, "/v1/session/"+id, SessionSolveRequest{Seq: 1}); status != result.StatusOK || resp.Verdict != "TRUE" {
		t.Fatalf("solve on degraded boot: got %d %q", status, resp.Verdict)
	}
}

// TestJournalTornCall: a crash between the recOps append and the recDone
// append (i.e. mid-solve) leaves a torn call. Recovery must apply the
// ops, consume the seq, and synthesize an interrupted response so the
// client's retry gets a final outcome and the ladder stays consistent.
func TestJournalTornCall(t *testing.T) {
	dir := t.TempDir()

	// Hand-craft the journal a crash would have left: open + ops, no done.
	j, _, err := journal.Open(journal.Options{Dir: dir, Fsync: journal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	createBody, _ := json.Marshal(SessionRequest{Formula: tinyTrue})
	openRec, _ := json.Marshal(journalOpen{ID: "s1", Req: createBody})
	opsRec, _ := json.Marshal(journalOps{ID: "s1", Seq: 1,
		Ops: []SessionOp{{Op: "push"}, {Op: "add", Lits: []int{-1}}}})
	if err := j.Append(journal.Record{Type: recOpen, Data: openRec}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journal.Record{Type: recOps, Data: opsRec}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	s, ts := journaledService(t, dir, Config{Workers: 1})
	if got := s.Snapshot().Journal.RecoveredSessions; got != 1 {
		t.Fatalf("recovered %d sessions, want 1", got)
	}
	// The retry of the torn seq replays the synthesized response: final
	// (Replayed), degraded (cancelled), with the frame ops applied.
	status, resp := postSession(t, ts.URL, "/v1/session/s1", SessionSolveRequest{
		Seq: 1, Ops: []SessionOp{{Op: "push"}, {Op: "add", Lits: []int{-1}}}})
	if status != result.StatusUnavailable || !resp.Replayed || resp.Stop != "cancelled" || resp.Depth != 1 {
		t.Fatalf("torn seq retry: got %d replayed=%v stop=%q depth=%d error=%q",
			status, resp.Replayed, resp.Stop, resp.Depth, resp.Error)
	}
	// The ladder continues from the applied ops: no pop yet → FALSE.
	status, resp = postSession(t, ts.URL, "/v1/session/s1", SessionSolveRequest{Seq: 2})
	if status != result.StatusOK || resp.Verdict != "FALSE" || resp.Depth != 1 {
		t.Fatalf("seq 2 after torn recovery: got %d %q depth=%d", status, resp.Verdict, resp.Depth)
	}
	status, resp = postSession(t, ts.URL, "/v1/session/s1", SessionSolveRequest{
		Seq: 3, Ops: []SessionOp{{Op: "pop"}}})
	if status != result.StatusOK || resp.Verdict != "TRUE" || resp.Depth != 0 {
		t.Fatalf("seq 3 after torn recovery: got %d %q depth=%d", status, resp.Verdict, resp.Depth)
	}
}

// TestJournalCompaction: snapshot compaction collapses a session's
// history to its live frames — popped frames drop out — and a restart
// from the compacted journal recovers the same logical state.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := crashService(t, dir, Config{Workers: 1, JournalCompactEvery: 1})
	id := mustCreate(t, ts1.URL, SessionRequest{Formula: tinyTrue})

	// Build history with dead weight: two pushed-then-popped frames, then
	// one live frame.
	ladder := [][]SessionOp{
		{{Op: "push"}, {Op: "add", Lits: []int{-1}}},
		{{Op: "pop"}},
		{{Op: "push"}, {Op: "assume", Lits: []int{2}}},
		{{Op: "pop"}},
		{{Op: "push"}, {Op: "add", Lits: []int{-1}}},
	}
	for i, ops := range ladder {
		if status, resp := postSession(t, ts1.URL, "/v1/session/"+id, SessionSolveRequest{Seq: int64(i + 1), Ops: ops}); status != result.StatusOK {
			t.Fatalf("seq %d: got %d error=%q", i+1, status, resp.Error)
		}
	}
	s1.sessions.maybeCompact()
	jst := s1.Snapshot().Journal
	if jst.Compactions != 1 || jst.Segments != 1 {
		t.Fatalf("after compaction: %+v", jst)
	}
	ts1.Close()
	s1.crashStop()

	s2, ts2 := journaledService(t, dir, Config{Workers: 1})
	jst2 := s2.Snapshot().Journal
	if jst2.RecoveredSessions != 1 || jst2.RecoveredRecords != 1 {
		t.Fatalf("recovery from compacted journal: %+v", jst2)
	}
	// Replay of the last seq and continuation both work on the compacted
	// state: the live frame survived, the popped frames are gone.
	status, resp := postSession(t, ts2.URL, "/v1/session/"+id, SessionSolveRequest{
		Seq: int64(len(ladder)), Ops: ladder[len(ladder)-1]})
	if status != result.StatusOK || !resp.Replayed || resp.Verdict != "FALSE" {
		t.Fatalf("replay after compacted recovery: got %d replayed=%v %q", status, resp.Replayed, resp.Verdict)
	}
	status, resp = postSession(t, ts2.URL, "/v1/session/"+id, SessionSolveRequest{
		Seq: int64(len(ladder)) + 1, Ops: []SessionOp{{Op: "pop"}}})
	if status != result.StatusOK || resp.Verdict != "TRUE" || resp.Depth != 0 {
		t.Fatalf("continue after compacted recovery: got %d %q depth=%d", status, resp.Verdict, resp.Depth)
	}
}

// TestDrainTombstonesJournal: a clean drain closes every session, so a
// restart over the same journal recovers none of them.
func TestDrainTombstonesJournal(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, JournalDir: dir, JournalFsync: "always"}
	s1 := New(cfg)
	ts1 := httptest.NewServer(s1.Handler())
	id := mustCreate(t, ts1.URL, SessionRequest{Formula: tinyTrue})
	if status, _ := postSession(t, ts1.URL, "/v1/session/"+id, SessionSolveRequest{Seq: 1}); status != result.StatusOK {
		t.Fatal("seq 1 failed")
	}
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	s2, ts2 := journaledService(t, dir, Config{Workers: 1})
	if got := s2.Snapshot().Journal.RecoveredSessions; got != 0 {
		t.Fatalf("recovered %d sessions after a clean drain, want 0", got)
	}
	if status, _ := postSession(t, ts2.URL, "/v1/session/"+id, SessionSolveRequest{Seq: 2}); status != http.StatusNotFound {
		t.Fatalf("drained session after restart: got %d, want 404", status)
	}
}
