package server

import (
	"testing"
	"time"
)

// FuzzSolveRequest covers the service's request decoder end to end:
// ParseSolveRequest (strict JSON framing) followed by buildSpec
// (formula parsing, mode/strategy validation, budget clamping). The
// decoder is the one part of the server that chews on raw network bytes,
// so it must never panic, and everything it accepts must be a spec the
// workers can run: a validated formula, a known mode, and budgets inside
// the server caps.
//
// Run with: go test -fuzz=FuzzSolveRequest ./internal/server/
// Regression corpus: testdata/fuzz/FuzzSolveRequest/ (replayed by plain
// go test).
func FuzzSolveRequest(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"formula":"p cnf 1 1\ne 1 0\n1 0\n"}`,
		`{"formula":"p cnf 1 1\ne 1 0\n1 0\n","mode":"to","strategy":"ed-ad"}`,
		`{"formula":"p cnf 1 1\ne 1 0\n1 0\n","mode":"portfolio","witness":true}`,
		`{"formula":"p qtree 7 3\nq e 1 0\nq a 2 0\nq e 3 4 0\nu 2\nq a 5 0\nq e 6 7 0\nu 3\n1 3 4 0\n2 -3 0\n1 6 -7 0\n","mode":"po"}`,
		`{"formula":"p cnf 1 1\ne 1 0\n1 0\n","max_time_ms":100,"max_nodes":10,"max_mem_mb":1}`,
		`{"formula":"p cnf 1 1\ne 1 0\n1 0\n","max_nodes":-3}`,
		`{"formula":"x","typo_field":1}`,
		`{"formula":"x"} trailing`,
		`[{"formula":"x"}]`,
		`{"formula":123}`,
		`{"formula":"x","max_time_ms":9223372036854775807}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	caps := Caps{MaxTime: time.Second, MaxNodes: 1000, MaxMem: 1 << 20}
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := ParseSolveRequest(body)
		if err != nil {
			return
		}
		if req == nil {
			t.Fatal("nil request without error")
		}
		spec, err := buildSpec(req, caps)
		if err != nil {
			return
		}
		if spec == nil {
			t.Fatal("nil spec without error")
		}
		if spec.q == nil {
			t.Fatalf("spec without formula: %+v", req)
		}
		if verr := spec.q.Validate(); verr != nil {
			t.Fatalf("accepted formula fails validation: %v\nrequest: %+v", verr, req)
		}
		switch spec.mode {
		case "po", "to", "portfolio":
		default:
			t.Fatalf("accepted unknown mode %q", spec.mode)
		}
		if spec.key == "" {
			t.Fatalf("spec without breaker key: %+v", req)
		}
		// Budgets must be clamped inside the caps: a spec that escapes
		// them lets one request reserve more of the shared process than
		// the operator allowed.
		if spec.opt.TimeLimit <= 0 || spec.opt.TimeLimit > caps.MaxTime {
			t.Fatalf("time budget %v escapes cap %v", spec.opt.TimeLimit, caps.MaxTime)
		}
		if spec.opt.NodeLimit <= 0 || spec.opt.NodeLimit > caps.MaxNodes {
			t.Fatalf("node budget %d escapes cap %d", spec.opt.NodeLimit, caps.MaxNodes)
		}
		if spec.opt.MemLimit <= 0 || spec.opt.MemLimit > caps.MaxMem {
			t.Fatalf("memory budget %d escapes cap %d", spec.opt.MemLimit, caps.MaxMem)
		}
	})
}
