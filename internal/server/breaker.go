package server

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position. The zero value is
// Closed: requests flow, failures are counted.
type BreakerState int

const (
	// BreakerClosed: traffic flows; consecutive contained panics are
	// counted and trip the breaker at the configured threshold.
	BreakerClosed BreakerState = iota
	// BreakerOpen: every request for the guarded configuration is refused
	// until the cooldown elapses. An open breaker is what quarantines a
	// poison configuration: the rest of the pool keeps serving while the
	// crash-looping config is isolated.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe request is
	// admitted. Its success closes the breaker, its failure reopens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// BreakerConfig tunes the per-configuration circuit breakers.
type BreakerConfig struct {
	// Threshold is the number of consecutive contained panics that opens
	// the breaker (0 = 3).
	Threshold int
	// Cooldown is how long an open breaker refuses traffic before
	// admitting a half-open probe (0 = 5s).
	Cooldown time.Duration

	// now overrides the clock in tests; nil means time.Now.
	now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// ticket binds a breaker admission to its later outcome report, so a
// stale request (admitted before the breaker opened) cannot close the
// breaker and a lost probe cannot wedge the half-open state.
type ticket struct {
	probe bool
}

// breaker is one open/half-open/closed state machine guarding one solver
// configuration. All methods are safe for concurrent use.
type breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool
	trips    int64 // cumulative closed→open transitions
}

func newBreaker(cfg BreakerConfig) *breaker {
	return &breaker{cfg: cfg.withDefaults()}
}

// Admit asks whether a request may proceed. When the breaker is open and
// the cooldown has elapsed it transitions to half-open and admits the
// caller as the single probe; the returned ticket must be resolved with
// Done (or Cancel, if the request is shed before solving).
func (b *breaker) Admit() (ticket, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return ticket{}, true
	case BreakerOpen:
		if b.cfg.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return ticket{}, false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return ticket{probe: true}, true
	default: // BreakerHalfOpen
		if b.probing {
			return ticket{}, false
		}
		b.probing = true
		return ticket{probe: true}, true
	}
}

// Done resolves an admitted request. A probe's success closes the
// breaker; any failure while closed counts toward the threshold and any
// failure while half-open reopens immediately. Outcomes reported while
// the breaker is open (stale in-flight requests) are ignored — they
// carry no information about the configuration's current health.
func (b *breaker) Done(t ticket, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t.probe {
		b.probing = false
	}
	switch {
	case ok && t.probe && b.state == BreakerHalfOpen:
		b.state = BreakerClosed
		b.fails = 0
	case ok && b.state == BreakerClosed:
		b.fails = 0
	case !ok && b.state == BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.trip()
		}
	case !ok && b.state == BreakerHalfOpen:
		b.trip()
	}
}

// Cancel releases an admission that never ran (the request was shed after
// breaker admission — queue full or drain). A cancelled probe returns the
// half-open breaker to its probe-pending state so the next request can
// probe instead of deadlocking the recovery path.
func (b *breaker) Cancel(t ticket) {
	if !t.probe {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

func (b *breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.now()
	b.fails = 0
	b.trips++
}

// State reports the current position (for /statusz and tests).
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips reports how many times the breaker has opened.
func (b *breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
