package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/prenex"
	"repro/internal/qbf"
	"repro/internal/qdimacs"
	"repro/internal/result"
)

// SolveRequest is the JSON body of POST /solve. Formula carries the
// instance in QDIMACS (prenex) or QTREE (non-prenex) text — the same two
// formats the CLIs read. The budget fields are requests, not commands:
// the server clamps each one to its configured cap, so a client cannot
// reserve more of a shared process than the operator allows.
type SolveRequest struct {
	// Formula is the instance text (QDIMACS or QTREE; required).
	Formula string `json:"formula"`
	// Mode selects the engine: "po" (default, partial-order tree search),
	// "to" (total order on a prenex conversion), or "portfolio".
	Mode string `json:"mode,omitempty"`
	// Strategy is the prenexing strategy for mode "to" on tree inputs:
	// eu-au (default), eu-ad, ed-au, ed-ad.
	Strategy string `json:"strategy,omitempty"`
	// MaxTimeMS / MaxNodes / MaxMemMB are the per-request budgets
	// (0 = the server's cap; values above the cap are clamped to it).
	MaxTimeMS int64 `json:"max_time_ms,omitempty"`
	MaxNodes  int64 `json:"max_nodes,omitempty"`
	MaxMemMB  int64 `json:"max_mem_mb,omitempty"`
	// Witness asks for the outermost existential assignment on TRUE.
	Witness bool `json:"witness,omitempty"`
}

// SessionRequest is the JSON body of POST /v1/session: it opens a sticky
// incremental session over one formula. The budget fields are clamped by
// the server caps like SolveRequest's; the time budget applies per solve
// call, the node budget per solve call (re-armed before each), and the
// memory budget to the session's learned-constraint store.
type SessionRequest struct {
	// Formula is the instance text (QDIMACS or QTREE; required).
	Formula string `json:"formula"`
	// Mode selects the engine: "po" (default) or "to". Sessions pin one
	// solver, so "portfolio" is rejected.
	Mode string `json:"mode,omitempty"`
	// Strategy is the prenexing strategy for mode "to" on tree inputs.
	Strategy string `json:"strategy,omitempty"`
	// MaxTimeMS / MaxNodes / MaxMemMB are the per-solve budgets
	// (0 = the server's cap; values above the cap are clamped to it).
	MaxTimeMS int64 `json:"max_time_ms,omitempty"`
	MaxNodes  int64 `json:"max_nodes,omitempty"`
	MaxMemMB  int64 `json:"max_mem_mb,omitempty"`
}

// SessionOp is one frame operation of a session solve call, applied in
// order before the solve. Lits are signed variable numbers (QDIMACS
// convention); push and pop take none.
type SessionOp struct {
	// Op is "push", "pop", "add" (a clause), or "assume" (unit clauses).
	Op string `json:"op"`
	// Lits are the operation's literals (add: the clause; assume: one unit
	// per literal).
	Lits []int `json:"lits,omitempty"`
}

// SessionSolveRequest is the JSON body of POST /v1/session/<id>: apply the
// frame operations in order, then solve. Seq makes retries idempotent —
// the first request on a fresh session carries 1, each subsequent request
// increments it, and a request re-sent with the last executed Seq replays
// the recorded response without re-executing anything. A Seq that is
// neither lastSeq nor lastSeq+1 is rejected with 409.
type SessionSolveRequest struct {
	// Seq is the client's request counter, starting at 1.
	Seq int64 `json:"seq"`
	// Ops are applied in order before the solve; the first failing op
	// aborts the request (already-applied ops stay applied — re-sync with
	// explicit push/pop or close the session if that is not recoverable).
	Ops []SessionOp `json:"ops,omitempty"`
	// Witness asks for the outermost existential assignment on TRUE.
	Witness bool `json:"witness,omitempty"`
}

// ParseSessionRequest decodes the body of a session-create request with
// the same strictness as ParseSolveRequest.
func ParseSessionRequest(body []byte) (*SessionRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req SessionRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decoding session request: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("decoding session request: trailing data after JSON body")
	}
	return &req, nil
}

// ParseSessionSolveRequest decodes the body of a session solve call.
func ParseSessionSolveRequest(body []byte) (*SessionSolveRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req SessionSolveRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decoding session solve request: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("decoding session solve request: trailing data after JSON body")
	}
	return &req, nil
}

// ResponseStats is the search-effort excerpt reported per request.
type ResponseStats struct {
	Decisions      int64 `json:"decisions"`
	Propagations   int64 `json:"propagations"`
	Conflicts      int64 `json:"conflicts"`
	Solutions      int64 `json:"solutions"`
	LearnedClauses int64 `json:"learned_clauses"`
	LearnedCubes   int64 `json:"learned_cubes"`
	Fixpoints      int64 `json:"fixpoints"`
}

// SolveResponse is the JSON body of every /solve reply — verdicts, budget
// stops, shed load, and errors all share this one schema, so a client can
// decode any outcome without sniffing the status code first.
type SolveResponse struct {
	// Verdict is TRUE, FALSE, or UNKNOWN; empty when the request was
	// rejected before a solve ran (400 and shed responses).
	Verdict string `json:"verdict,omitempty"`
	// Stop explains an UNKNOWN verdict (result.StopReason string).
	Stop string `json:"stop,omitempty"`
	// Shed names the admission-layer rejection (ShedReason string) on 429
	// and pre-solve 503 responses.
	Shed string `json:"shed,omitempty"`
	// Error carries the decode/validation/panic message.
	Error string `json:"error,omitempty"`
	// Witness is the outermost existential assignment as signed variable
	// numbers, present on TRUE when requested and available.
	Witness []int `json:"witness,omitempty"`
	// Stats reports search effort for completed solves.
	Stats *ResponseStats `json:"stats,omitempty"`
	// Source marks responses the qbfgate front tier served from its
	// canonical-form verdict cache ("cache"). Absent on responses a
	// backend solved.
	Source string `json:"source,omitempty"`
	// Session is the sticky-session id, present on every /v1/session
	// response (the create response carries only this plus Depth).
	Session string `json:"session,omitempty"`
	// Depth is the session's open frame depth after the request's ops.
	Depth int `json:"depth,omitempty"`
	// Replayed marks a response served from the session's idempotency
	// record (a retry carrying the last executed Seq) without re-solving.
	Replayed bool `json:"replayed,omitempty"`
	// QueueMS and SolveMS split the request's wall-clock between waiting
	// for a worker and solving.
	QueueMS int64 `json:"queue_ms"`
	SolveMS int64 `json:"solve_ms"`
}

// SourceCache is the SolveResponse.Source value for verdicts the gate
// served from its canonical-form cache instead of a live backend solve.
const SourceCache = "cache"

// Caps are the server-wide budget ceilings. A zero field leaves that
// dimension uncapped (requests may then also leave it unlimited).
type Caps struct {
	// MaxTime bounds the per-request wall-clock budget.
	MaxTime time.Duration
	// MaxNodes bounds the per-request decision budget.
	MaxNodes int64
	// MaxMem bounds the per-request learned-constraint byte budget.
	MaxMem int64
}

// solveSpec is a validated, budget-clamped request ready to enter the
// work queue.
type solveSpec struct {
	q         *qbf.QBF
	mode      string // "po", "to", "portfolio"
	strategy  prenex.Strategy
	opt       core.Options
	witness   bool
	portfolio bool
	// key groups requests for the circuit breaker and quarantine ledger:
	// one breaker per solver configuration, so a poison config is isolated
	// without blocking the others.
	key string
}

// ParseSolveRequest decodes the JSON body of a /solve request. Unknown
// fields are rejected — a typoed budget field silently ignored would make
// the caller believe a budget is in force when none is — as is trailing
// garbage after the JSON object.
func ParseSolveRequest(body []byte) (*SolveRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req SolveRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decoding request: %w", err)
	}
	// A second document (or any non-space trailing bytes) is a framing
	// error, not extra context to ignore.
	if dec.More() {
		return nil, fmt.Errorf("decoding request: trailing data after JSON body")
	}
	return &req, nil
}

// buildSpec validates a decoded request against the server caps: the
// formula must parse and validate, the mode and strategy must be known,
// and every budget is clamped into (0, cap]. It never runs the solver.
func buildSpec(req *SolveRequest, caps Caps) (*solveSpec, error) {
	if req.Formula == "" {
		return nil, fmt.Errorf("empty formula")
	}
	if req.MaxTimeMS < 0 || req.MaxNodes < 0 || req.MaxMemMB < 0 {
		return nil, fmt.Errorf("negative budget (max_time_ms=%d max_nodes=%d max_mem_mb=%d)",
			req.MaxTimeMS, req.MaxNodes, req.MaxMemMB)
	}
	q, err := qdimacs.ReadString(req.Formula)
	if err != nil {
		return nil, fmt.Errorf("parsing formula: %w", err)
	}
	// The reader leaves duplicate literals and tautological clauses to the
	// standard cleanup (see the qdimacs package contract); run it here so a
	// request the workers would reject is a 400 at decode time — and, for
	// sessions, never journaled.
	q.NormalizeMatrix()
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("invalid formula: %w", err)
	}
	spec := &solveSpec{q: q, witness: req.Witness}
	spec.opt = core.Options{
		TimeLimit: clampDuration(time.Duration(req.MaxTimeMS)*time.Millisecond, caps.MaxTime),
		NodeLimit: clampInt64(req.MaxNodes, caps.MaxNodes),
		MemLimit:  clampInt64(req.MaxMemMB<<20, caps.MaxMem),
	}
	mode := req.Mode
	if mode == "" {
		mode = "po"
	}
	switch mode {
	case "po":
		if req.Strategy != "" {
			return nil, fmt.Errorf("strategy %q is only meaningful with mode \"to\"", req.Strategy)
		}
		spec.opt.Mode = core.ModePartialOrder
		spec.key = "po"
	case "to":
		s, err := parseStrategy(req.Strategy)
		if err != nil {
			return nil, err
		}
		spec.strategy = s
		spec.opt.Mode = core.ModeTotalOrder
		if !q.Prefix.IsPrenex() {
			spec.q = prenex.Apply(q, s)
		}
		name := req.Strategy
		if name == "" {
			name = "eu-au"
		}
		spec.key = "to:" + name
	case "portfolio":
		if req.Strategy != "" {
			return nil, fmt.Errorf("strategy %q is only meaningful with mode \"to\"", req.Strategy)
		}
		spec.portfolio = true
		spec.key = "portfolio"
	default:
		return nil, fmt.Errorf("unknown mode %q", req.Mode)
	}
	spec.mode = mode
	return spec, nil
}

// clampDuration applies a cap: 0 means "the cap itself" (or unlimited
// when the cap is 0), anything above the cap is pulled down to it.
func clampDuration(d, cap time.Duration) time.Duration {
	if cap <= 0 {
		return d
	}
	if d <= 0 || d > cap {
		return cap
	}
	return d
}

func clampInt64(v, cap int64) int64 {
	if cap <= 0 {
		return v
	}
	if v <= 0 || v > cap {
		return cap
	}
	return v
}

func parseStrategy(s string) (prenex.Strategy, error) {
	switch s {
	case "", "eu-au":
		return prenex.EUpAUp, nil
	case "eu-ad":
		return prenex.EUpADown, nil
	case "ed-au":
		return prenex.EDownAUp, nil
	case "ed-ad":
		return prenex.EDownADown, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

// respond assembles the SolveResponse for a finished solve.
func solveResponse(v result.Verdict, stop result.StopReason, st result.Stats, witness []int, solveErr error) SolveResponse {
	resp := SolveResponse{
		Verdict: v.String(),
		Witness: witness,
		Stats: &ResponseStats{
			Decisions:      st.Decisions,
			Propagations:   st.Propagations,
			Conflicts:      st.Conflicts,
			Solutions:      st.Solutions,
			LearnedClauses: st.LearnedClauses,
			LearnedCubes:   st.LearnedCubes,
			Fixpoints:      st.Fixpoints,
		},
	}
	if v == result.Unknown && stop != result.StopNone {
		resp.Stop = stop.String()
	}
	if solveErr != nil {
		resp.Error = solveErr.Error()
	}
	return resp
}

// witnessInts flattens a witness model into signed variable numbers in
// increasing variable order (the JSON analogue of the CLI's "v" line).
func witnessInts(model map[qbf.Var]bool, maxVar int) []int {
	if model == nil {
		return nil
	}
	out := make([]int, 0, len(model))
	for v := qbf.MinVar; v.Int() <= maxVar; v++ {
		if val, has := model[v]; has {
			if val {
				out = append(out, v.Int())
			} else {
				out = append(out, -v.Int())
			}
		}
	}
	return out
}
