//go:build qbfdebug

// Chaos coverage for the solve service: a storm of concurrent requests
// with injected panics (via the qbfdebug fault hook), client disconnects,
// tiny budgets, and mixed solver configurations. Run with -race; the
// assertions are:
//
//   - every response the server sends is well-formed and carries one of
//     the documented statuses for its situation;
//   - every decided verdict agrees with a direct sequential solve of the
//     same instance (the oracle);
//   - the poison configuration's breaker opens, the rest of the pool
//     keeps serving, and after the fault clears a half-open probe closes
//     the breaker again;
//   - a drain in the middle of the storm still answers every request;
//   - no goroutines outlive the server.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/qdimacs"
	"repro/internal/randqbf"
	"repro/internal/result"
)

// chaosInstance is one pool entry: the QDIMACS text and its oracle
// verdict from an unbudgeted sequential solve.
type chaosInstance struct {
	text    string
	verdict core.Verdict
}

// chaosPool builds small random instances and solves each one cleanly for
// the oracle. The params keep single solves in the sub-millisecond range
// so a few hundred requests finish quickly even under -race.
func chaosPool(t *testing.T, n int) []chaosInstance {
	t.Helper()
	pool := make([]chaosInstance, n)
	for i := range pool {
		q := randqbf.Prob(randqbf.ProbParams{
			Blocks: 2, BlockSize: 6, Clauses: 26, Length: 3, MaxUniversal: 1, Seed: int64(100 + i),
		})
		text, err := qdimacs.WriteString(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Solve(context.Background(), q, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict == core.Unknown {
			t.Fatalf("oracle could not decide instance %d", i)
		}
		pool[i] = chaosInstance{text: text, verdict: res.Verdict}
	}
	return pool
}

// poisonKey is the solver configuration the chaos hook makes crash-loop.
const poisonKey = "to:ed-ad"

func postRaw(ctx context.Context, url string, req SolveRequest) (int, SolveResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, SolveResponse{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/solve", bytes.NewReader(body))
	if err != nil {
		return 0, SolveResponse{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return 0, SolveResponse{}, err
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(hresp.Body)
	if err != nil {
		return 0, SolveResponse{}, err
	}
	var resp SolveResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return hresp.StatusCode, SolveResponse{}, fmt.Errorf("status %d with malformed body %q: %w", hresp.StatusCode, data, err)
	}
	return hresp.StatusCode, resp, nil
}

func TestChaosStormWithFaultInjection(t *testing.T) {
	pool := chaosPool(t, 8)
	baseGoroutines := runtime.NumGoroutine()

	var poisonArmed atomic.Bool
	poisonArmed.Store(true)
	cfg := Config{
		Workers:      4,
		QueueDepth:   256,
		QueueTimeout: 30 * time.Second,
		Breaker:      BreakerConfig{Threshold: 3, Cooldown: 100 * time.Millisecond},
		testSolverHook: func(spec *solveSpec, s *core.Solver) {
			if spec.key == poisonKey && poisonArmed.Load() {
				s.SetFaultHook(func(fp int64) {
					panic("chaos: injected solver fault")
				})
			}
		},
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())

	const storm = 240
	var wg sync.WaitGroup
	errs := make(chan error, storm)
	var decided, panicked, shed, cancelled atomic.Int64
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			inst := pool[rng.Intn(len(pool))]
			req := SolveRequest{Formula: inst.text}
			switch {
			case i%5 == 1: // poison configuration: panics while armed
				req.Mode = "to"
				req.Strategy = "ed-ad"
			case i%5 == 2:
				req.Mode = "to"
			case i%10 == 3:
				req.Mode = "portfolio"
			}
			switch {
			case i%7 == 0:
				req.MaxNodes = int64(1 + rng.Intn(4))
			case i%11 == 0:
				req.MaxTimeMS = 1
			}
			ctx := context.Background()
			if i%13 == 0 { // impatient client: may disconnect at any stage
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(1+rng.Intn(3))*time.Millisecond)
				defer cancel()
			}
			status, resp, err := postRaw(ctx, ts.URL, req)
			if err != nil {
				if ctx.Err() != nil {
					cancelled.Add(1)
					return // a disconnected client gets no response, by design
				}
				errs <- fmt.Errorf("request %d: %v", i, err)
				return
			}
			switch status {
			case result.StatusOK:
				decided.Add(1)
				if resp.Verdict != inst.verdict.String() {
					errs <- fmt.Errorf("request %d: verdict %q, oracle %v", i, resp.Verdict, inst.verdict)
				}
				if resp.Stats == nil {
					errs <- fmt.Errorf("request %d: 200 without stats", i)
				}
			case result.StatusUnprocessable:
				if resp.Stop != "node-limit" {
					errs <- fmt.Errorf("request %d: 422 with stop %q", i, resp.Stop)
				}
			case result.StatusTimeout:
				if resp.Stop != "timeout" {
					errs <- fmt.Errorf("request %d: 504 with stop %q", i, resp.Stop)
				}
			case result.StatusInternalError:
				panicked.Add(1)
				if req.Strategy != "ed-ad" {
					errs <- fmt.Errorf("request %d: healthy config %q panicked: %+v", i, req.Mode, resp)
				}
				if resp.Stop != "panicked" || resp.Error == "" {
					errs <- fmt.Errorf("request %d: 500 with stop %q error %q", i, resp.Stop, resp.Error)
				}
			case result.StatusUnavailable:
				shed.Add(1)
				if resp.Shed == "" && resp.Stop != "cancelled" {
					errs <- fmt.Errorf("request %d: bare 503: %+v", i, resp)
				}
				if resp.Shed == "breaker-open" && req.Strategy != "ed-ad" {
					errs <- fmt.Errorf("request %d: healthy config hit an open breaker", i)
				}
			case result.StatusTooManyRequests:
				shed.Add(1)
				if resp.Shed != "queue-full" {
					errs <- fmt.Errorf("request %d: 429 with shed %q", i, resp.Shed)
				}
			default:
				errs <- fmt.Errorf("request %d: unexpected status %d: %+v", i, status, resp)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	if decided.Load() == 0 {
		t.Fatal("storm produced no verdicts at all")
	}
	if panicked.Load() == 0 {
		t.Fatal("fault injection never surfaced a contained panic")
	}
	t.Logf("storm: %d decided, %d panicked, %d shed, %d client-cancelled",
		decided.Load(), panicked.Load(), shed.Load(), cancelled.Load())

	// The poison configuration must be quarantined with a tripped breaker;
	// healthy configurations must be untouched.
	snap := s.Snapshot()
	if snap.Panics == 0 || snap.Breakers[poisonKey].Trips == 0 {
		t.Fatalf("poison breaker never tripped: %+v", snap.Breakers[poisonKey])
	}
	if len(snap.Quarantined) != 1 || snap.Quarantined[0] != poisonKey {
		t.Fatalf("quarantined = %v, want [%s]", snap.Quarantined, poisonKey)
	}
	for key, b := range snap.Breakers {
		if key != poisonKey && b.Trips != 0 {
			t.Fatalf("healthy breaker %q tripped %d times", key, b.Trips)
		}
	}

	// Recovery: clear the fault and keep knocking on the poison
	// configuration. After the cooldown a half-open probe must succeed and
	// close the breaker.
	poisonArmed.Store(false)
	inst := pool[0]
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, resp, err := postRaw(context.Background(), ts.URL,
			SolveRequest{Formula: inst.text, Mode: "to", Strategy: "ed-ad"})
		if err != nil {
			t.Fatal(err)
		}
		if status == result.StatusOK {
			if resp.Verdict != inst.verdict.String() {
				t.Fatalf("recovered verdict %q, oracle %v", resp.Verdict, inst.verdict)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("poison config never recovered: last status %d %+v", status, resp)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := s.breakerFor(poisonKey).State(); got != BreakerClosed {
		t.Fatalf("breaker after recovery = %v, want closed", got)
	}

	// Teardown and goroutine hygiene: after drain + server close the
	// goroutine count must return to (about) the pre-test level.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()
	waitFor(t, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseGoroutines+8
	})
}

func TestChaosDrainUnderLoad(t *testing.T) {
	pool := chaosPool(t, 4)
	s := New(Config{Workers: 4, QueueDepth: 64, QueueTimeout: 30 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const storm = 120
	var wg sync.WaitGroup
	errs := make(chan error, storm)
	var served, shedDraining atomic.Int64
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inst := pool[i%len(pool)]
			status, resp, err := postRaw(context.Background(), ts.URL, SolveRequest{Formula: inst.text})
			if err != nil {
				errs <- fmt.Errorf("request %d: %v", i, err)
				return
			}
			switch status {
			case result.StatusOK:
				served.Add(1)
				if resp.Verdict != inst.verdict.String() {
					errs <- fmt.Errorf("request %d: verdict %q, oracle %v", i, resp.Verdict, inst.verdict)
				}
			case result.StatusUnavailable:
				shedDraining.Add(1)
				if resp.Shed == "" && resp.Stop != "cancelled" {
					errs <- fmt.Errorf("request %d: bare 503: %+v", i, resp)
				}
			case result.StatusTooManyRequests:
				// queue overflow during the pile-up is fine
			default:
				errs <- fmt.Errorf("request %d: unexpected status %d: %+v", i, status, resp)
			}
		}(i)
	}
	// Let some of the storm land, then drain in the middle of it. Every
	// request must still get a well-formed answer.
	waitFor(t, func() bool { return s.Snapshot().Completed > 10 })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain under load: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if served.Load() == 0 {
		t.Fatal("nothing was served before the drain")
	}
	if snap := s.Snapshot(); snap.InFlight != 0 || !snap.Draining {
		t.Fatalf("post-drain snapshot: %+v", snap)
	}
	t.Logf("drain under load: %d served, %d shed", served.Load(), shedDraining.Load())
}
