// Package qdll implements the plain Q-DLL procedure of the paper's
// Figure 1, generalized to arbitrary (non-prenex) QBFs exactly as Section
// IV describes: the contradictory-clause rule (Lemma 4), the generalized
// unit rule (Lemma 5), and branching restricted to top literals of the
// current residual prefix. No learning, no pure-literal fixing, no
// heuristics beyond a deterministic top-literal choice.
//
// The implementation is deliberately literal — a recursive transcription
// of the pseudo-code — so it serves three purposes: a faithful rendition
// of the paper's base algorithm, an additional differential-testing oracle
// that is independent from both the semantic evaluator and the QCDCL
// engine, and the baseline that motivates learning (compare its node
// counts with internal/core on anything nontrivial).
package qdll

import (
	"errors"

	"repro/internal/qbf"
)

// Stats counts the work of one Run call.
type Stats struct {
	// Branches is the number of literals assigned at line 4 of Figure 1.
	Branches int64
	// Units is the number of line-3 unit assignments.
	Units int64
	// Nodes is the number of Q-DLL invocations.
	Nodes int64
}

// ErrBudget is returned when the node budget is exhausted.
var ErrBudget = errors.New("qdll: node budget exhausted")

// Solve runs Q-DLL on q with an optional node budget (0 = unlimited).
// It returns the value of the formula.
func Solve(q *qbf.QBF, budget int64) (bool, Stats, error) {
	work := q.Clone()
	work.BindFreeVars()
	work.NormalizeMatrix()
	work.Prefix.Finalize()
	if _, err := work.ScopeConsistent(); err != nil {
		return false, Stats{}, err
	}
	s := &solver{budget: budget}
	v, err := s.qdll(work)
	return v, s.stats, err
}

type solver struct {
	budget int64
	stats  Stats
}

// qdll is Figure 1, lines 0–6.
func (s *solver) qdll(q *qbf.QBF) (bool, error) {
	s.stats.Nodes++
	if s.budget > 0 && s.stats.Nodes > s.budget {
		return false, ErrBudget
	}

	// Line 1: a contradictory clause is in ϕ → FALSE.
	for _, c := range q.Matrix {
		if contradictory(q, c) {
			return false, nil
		}
	}
	// Line 2: the matrix of ϕ is empty → TRUE. (Clauses whose variables
	// all vanished from the prefix cannot exist here: a clause only loses
	// literals when they are assigned.)
	if len(q.Matrix) == 0 {
		return true, nil
	}
	// Line 3: if l is unit in ϕ, recurse on ϕ_l.
	if l, ok := findUnit(q); ok {
		s.stats.Units++
		return s.qdll(q.Assign(l))
	}
	// Line 4: choose a top literal.
	l, ok := topLiteral(q)
	if !ok {
		// All prefix variables assigned but clauses remain; they must be
		// over free variables, which BindFreeVars precluded — treat the
		// nonempty matrix without empty clause as satisfiable residue.
		return false, errors.New("qdll: no top literal in a nonempty formula")
	}
	s.stats.Branches++
	// Lines 5–6: "or" for existential, "and" for universal.
	first, err := s.qdll(q.Assign(l))
	if err != nil {
		return false, err
	}
	if q.Prefix.QuantOf(l.Var()) == qbf.Exists {
		if first {
			return true, nil
		}
	} else if !first {
		return false, nil
	}
	return s.qdll(q.Assign(l.Neg()))
}

// contradictory is Lemma 4's premise: no existential literal in c.
func contradictory(q *qbf.QBF, c qbf.Clause) bool {
	for _, l := range c {
		if q.Prefix.QuantOf(l.Var()) == qbf.Exists {
			return false
		}
	}
	return true
}

// findUnit looks for a unit literal per the generalized definition of
// Section IV: an existential l in a clause {l, l1…lm} whose other literals
// are all universal with |li| ⋠ |l|.
func findUnit(q *qbf.QBF) (qbf.Lit, bool) {
	for _, c := range q.Matrix {
		for _, l := range c {
			if q.Prefix.QuantOf(l.Var()) != qbf.Exists {
				continue
			}
			unit := true
			for _, m := range c {
				if m == l {
					continue
				}
				if q.Prefix.QuantOf(m.Var()) != qbf.Forall ||
					q.Prefix.Before(m.Var(), l.Var()) {
					unit = false
					break
				}
			}
			if unit {
				return l, true
			}
		}
	}
	return 0, false
}

// topLiteral picks a deterministic top literal: the smallest-index
// variable of prefix level 1 that still occurs in the matrix (an absent
// top variable is assigned positively without branching value, so it is
// picked too if nothing better exists; its two branches coincide).
func topLiteral(q *qbf.QBF) (qbf.Lit, bool) {
	occurs := make(map[qbf.Var]bool)
	for _, c := range q.Matrix {
		for _, l := range c {
			occurs[l.Var()] = true
		}
	}
	var present, absent qbf.Var
	for _, b := range q.Prefix.Blocks() {
		if b.Level() != 1 {
			continue
		}
		for _, v := range b.Vars {
			if occurs[v] {
				if present == 0 || v < present {
					present = v
				}
			} else if absent == 0 || v < absent {
				absent = v
			}
		}
	}
	if present != 0 {
		return present.PosLit(), true
	}
	if absent != 0 {
		return absent.PosLit(), true
	}
	return 0, false
}
