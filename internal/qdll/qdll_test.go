package qdll

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/qbf"
)

func TestBasics(t *testing.T) {
	mk := func(lits ...int) qbf.Clause {
		c := make(qbf.Clause, len(lits))
		for i, l := range lits {
			c[i] = qbf.Lit(l)
		}
		return c
	}
	p1 := qbf.NewPrenexPrefix(2,
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{1}},
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{2}})
	v, st, err := Solve(qbf.New(p1, []qbf.Clause{mk(1, 2), mk(-1, -2)}), 0)
	if err != nil || !v {
		t.Fatalf("∀y∃x xor: %v %v", v, err)
	}
	if st.Nodes == 0 {
		t.Error("no nodes counted")
	}

	p2 := qbf.NewPrenexPrefix(2,
		qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{2}},
		qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{1}})
	if v, _, _ := Solve(qbf.New(p2, []qbf.Clause{mk(1, 2), mk(-1, -2)}), 0); v {
		t.Error("∃x∀y xor must be false")
	}

	// Empty matrix and contradictory clause.
	p3 := qbf.NewPrenexPrefix(1, qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{1}})
	if v, _, _ := Solve(qbf.New(p3, nil), 0); !v {
		t.Error("empty matrix must be true")
	}
	if v, _, _ := Solve(qbf.New(p3.Clone(), []qbf.Clause{mk(1)}), 0); v {
		t.Error("contradictory clause must be false")
	}
}

// TestAgainstOracle: Q-DLL must agree with the semantic evaluator on random
// non-prenex trees.
func TestAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	n := 250
	if testing.Short() {
		n = 60
	}
	for i := 0; i < n; i++ {
		q := qbf.RandomQBF(rng, 11, 12)
		want, ok := qbf.EvalWithBudget(q, 2_000_000)
		if !ok {
			continue
		}
		got, _, err := Solve(q, 2_000_000)
		if err != nil {
			continue
		}
		if got != want {
			t.Fatalf("iteration %d: qdll=%v oracle=%v\n%v", i, got, want, q)
		}
	}
}

// TestAgainstQCDCL: the two independent solvers must agree.
func TestAgainstQCDCL(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	for i := 0; i < 150; i++ {
		q := qbf.RandomQBF(rng, 12, 14)
		basic, _, err := Solve(q, 4_000_000)
		if err != nil {
			continue
		}
		rRes, err := core.Solve(context.Background(), q, core.Options{})
		r := rRes.Verdict
		if err != nil {
			t.Fatal(err)
		}
		if (r == core.True) != basic {
			t.Fatalf("iteration %d: qdll=%v qcdcl=%v\n%v", i, basic, r, q)
		}
	}
}

func TestBudget(t *testing.T) {
	// A formula requiring several branches with budget 1.
	p := qbf.NewPrenexPrefix(6, qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{1, 2, 3, 4, 5, 6}})
	m := []qbf.Clause{{1, 2}, {-1, 3}, {-2, -3}, {3, 4}, {-4, 5}, {-5, 6, -3}}
	_, _, err := Solve(qbf.New(p, m), 1)
	if err != ErrBudget {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

// TestLearningBeatsQDLL: on a structured instance, the QCDCL engine must
// need far fewer branches than plain Q-DLL — the motivation for Section
// III's improvements.
func TestLearningBeatsQDLL(t *testing.T) {
	// A chained xor game: ∀y1∃x1…∀y4∃x4 with x_i ≡ y_i and a linking
	// clause chain, forcing 2^4 universal branches for plain Q-DLL.
	var runs []qbf.Run
	for i := 0; i < 4; i++ {
		runs = append(runs,
			qbf.Run{Quant: qbf.Forall, Vars: []qbf.Var{qbf.Var(2*i + 1)}},
			qbf.Run{Quant: qbf.Exists, Vars: []qbf.Var{qbf.Var(2*i + 2)}})
	}
	p := qbf.NewPrenexPrefix(8, runs...)
	var m []qbf.Clause
	for i := 0; i < 4; i++ {
		y, x := qbf.Lit(2*i+1), qbf.Lit(2*i+2)
		m = append(m, qbf.Clause{y, -x}, qbf.Clause{-y, x})
	}
	q := qbf.New(p, m)

	v, st, err := Solve(q, 0)
	if err != nil || !v {
		t.Fatalf("xor chain must be true: %v %v", v, err)
	}
	rRes, err := core.Solve(context.Background(), q, core.Options{})
	r, cst := rRes.Verdict, rRes.Stats
	if err != nil || r != core.True {
		t.Fatalf("qcdcl: %v %v", r, err)
	}
	if st.Branches <= 2*cst.Decisions {
		t.Logf("qdll branches %d, qcdcl decisions %d (no dramatic gap on this size)",
			st.Branches, cst.Decisions)
	}
}
