package models

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/invariant"
	"repro/internal/qbf"
)

// The families below extend the Section VII.C selection with further
// parametric models in the same spirit: small synchronous or interleaved
// circuits whose diameters are known in closed form or cheap to compute by
// BFS, giving the diameter benchmarks more shape variety (linear, constant
// and exponential diameters over linear state growth).

// GrayCounter returns the n-bit Gray-code counter: the successor of s is
// the next code word in the reflected Gray sequence. Like the binary
// counter it visits all 2^n states in a cycle, so its diameter is 2^n − 1,
// but each step flips exactly one bit, which makes the transition relation
// parity-heavy — a harder CNF shape for the same diameter.
func GrayCounter(n int) *Model {
	if n < 1 {
		invariant.Violated("models: GrayCounter needs n >= 1")
	}
	return &Model{
		Name: fmt.Sprintf("gray%d", n),
		Bits: n,
		Init: allZero,
		Trans: func(b *circuit.Builder, s, t []qbf.Var) circuit.Node {
			// Gray successor: let p = parity(s). If p = 0 flip bit 0;
			// otherwise flip the bit above the lowest set bit (flip the
			// top bit when s is the last code word 10…0).
			parity := b.False()
			for i := 0; i < n; i++ {
				parity = b.Xor(parity, b.Var(s[i]))
			}
			// lowest[i]: bit i is the lowest set bit of s.
			noneBelow := b.True()
			lowest := make([]circuit.Node, n)
			for i := 0; i < n; i++ {
				lowest[i] = b.And(b.Var(s[i]), noneBelow)
				noneBelow = b.And(noneBelow, b.Var(s[i]).Neg())
			}
			// flip[i]: bit i flips in this step.
			flip := make([]circuit.Node, n)
			for i := 0; i < n; i++ {
				flip[i] = b.False()
			}
			flip[0] = parity.Neg()
			for i := 0; i < n-1; i++ {
				flip[i+1] = b.Or(flip[i+1], b.And(parity, lowest[i]))
			}
			if n > 1 {
				// Last code word 10…0: lowest set bit is the top bit;
				// flip it to return to 0.
				flip[n-1] = b.Or(flip[n-1], b.And(parity, lowest[n-1]))
			}
			terms := make([]circuit.Node, n)
			for i := 0; i < n; i++ {
				terms[i] = b.Iff(b.Var(t[i]), b.Xor(b.Var(s[i]), flip[i]))
			}
			return b.And(terms...)
		},
		KnownDiameter: (1 << n) - 1,
	}
}

// ShiftRegister returns an n-bit shift register with a free serial input:
// each step shifts left by one and loads a nondeterministic bit at
// position 0. Every state is reachable from the all-zeros initial state in
// at most n steps and state 1…1 needs exactly n, so the diameter is n.
func ShiftRegister(n int) *Model {
	if n < 1 {
		invariant.Violated("models: ShiftRegister needs n >= 1")
	}
	return &Model{
		Name: fmt.Sprintf("shift%d", n),
		Bits: n,
		Init: allZero,
		Trans: func(b *circuit.Builder, s, t []qbf.Var) circuit.Node {
			terms := make([]circuit.Node, 0, n-1)
			for i := 0; i < n-1; i++ {
				terms = append(terms, b.Iff(b.Var(t[i+1]), b.Var(s[i])))
			}
			// t[0] is unconstrained: the serial input.
			return b.And(terms...)
		},
		KnownDiameter: n,
	}
}

// Arbiter returns a round-robin bus arbiter over n requesters: a one-hot
// grant token rotates each step; a requester holds the bus (busy bit) for
// the step its grant coincides with its request. Requests are free inputs.
// The state is the token position plus the busy bit; every configuration
// is reachable within one rotation, so the diameter is n.
func Arbiter(n int) *Model {
	if n < 2 {
		invariant.Violated("models: Arbiter needs n >= 2")
	}
	return &Model{
		Name: fmt.Sprintf("arbiter%d", n),
		Bits: n + 1,
		Init: func(b *circuit.Builder, s []qbf.Var) circuit.Node {
			terms := make([]circuit.Node, 0, n+1)
			terms = append(terms, b.Var(s[0]))
			for i := 1; i < n; i++ {
				terms = append(terms, b.Var(s[i]).Neg())
			}
			terms = append(terms, b.Var(s[n]).Neg())
			return b.And(terms...)
		},
		Trans: func(b *circuit.Builder, s, t []qbf.Var) circuit.Node {
			terms := make([]circuit.Node, 0, n+1)
			for i := 0; i < n; i++ {
				terms = append(terms, b.Iff(b.Var(t[(i+1)%n]), b.Var(s[i])))
			}
			// The busy bit is free: it records whether the granted
			// requester used the bus, a nondeterministic input.
			return b.And(terms...)
		},
		KnownDiameter: n,
	}
}

func init() {
	All["gray"] = GrayCounter
	All["shift"] = ShiftRegister
	All["arbiter"] = Arbiter
}
