package models

import "testing"

func TestGrayCounterDiameter(t *testing.T) {
	for n := 1; n <= 4; n++ {
		m := GrayCounter(n)
		d, err := ExplicitDiameter(m, 12)
		if err != nil {
			t.Fatal(err)
		}
		if d != m.KnownDiameter {
			t.Errorf("gray%d: BFS diameter %d, declared %d", n, d, m.KnownDiameter)
		}
	}
}

func TestShiftRegisterDiameter(t *testing.T) {
	for n := 1; n <= 6; n++ {
		m := ShiftRegister(n)
		d, err := ExplicitDiameter(m, 12)
		if err != nil {
			t.Fatal(err)
		}
		if d != n {
			t.Errorf("shift%d: BFS diameter %d, want %d", n, d, n)
		}
	}
}

func TestArbiterDiameter(t *testing.T) {
	for n := 2; n <= 5; n++ {
		m := Arbiter(n)
		d, err := ExplicitDiameter(m, 12)
		if err != nil {
			t.Fatal(err)
		}
		if d != n {
			t.Errorf("arbiter%d: BFS diameter %d, want %d", n, d, n)
		}
	}
}

func TestAllRegistryComplete(t *testing.T) {
	for _, name := range []string{"counter", "ring", "semaphore", "dme", "gray", "shift", "arbiter"} {
		gen, ok := All[name]
		if !ok {
			t.Errorf("family %q missing from registry", name)
			continue
		}
		m := gen(3)
		if m.Bits <= 0 || m.Init == nil || m.Trans == nil {
			t.Errorf("family %q produces an incomplete model", name)
		}
	}
}
