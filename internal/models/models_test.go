package models

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/qbf"
)

func TestCounterExplicitDiameter(t *testing.T) {
	for n := 1; n <= 4; n++ {
		m := Counter(n)
		d, err := ExplicitDiameter(m, 12)
		if err != nil {
			t.Fatal(err)
		}
		if d != m.KnownDiameter {
			t.Errorf("counter%d: BFS diameter %d, declared %d", n, d, m.KnownDiameter)
		}
		if m.KnownDiameter != (1<<n)-1 {
			t.Errorf("counter%d: declared diameter %d, want %d", n, m.KnownDiameter, (1<<n)-1)
		}
	}
}

func TestSemaphoreExplicitDiameter(t *testing.T) {
	for n := 1; n <= 4; n++ {
		m := Semaphore(n)
		d, err := ExplicitDiameter(m, 12)
		if err != nil {
			t.Fatal(err)
		}
		if d != 3 {
			t.Errorf("semaphore%d: BFS diameter %d, want the constant 3", n, d)
		}
	}
}

func TestDMEExplicitDiameter(t *testing.T) {
	for n := 2; n <= 6; n++ {
		m := DME(n)
		d, err := ExplicitDiameter(m, 12)
		if err != nil {
			t.Fatal(err)
		}
		if d != n {
			t.Errorf("dme%d: BFS diameter %d, want %d", n, d, n)
		}
	}
}

func TestRingExplicitDiameterGrows(t *testing.T) {
	prev := 0
	for n := 2; n <= 5; n++ {
		m := Ring(n)
		d, err := ExplicitDiameter(m, 12)
		if err != nil {
			t.Fatal(err)
		}
		if d <= 0 {
			t.Fatalf("ring%d: nonpositive diameter %d", n, d)
		}
		if d < prev {
			t.Errorf("ring%d: diameter %d shrank from %d", n, d, prev)
		}
		prev = d
	}
}

func TestTwoBitExplicitDiameter(t *testing.T) {
	m := TwoBit()
	d, err := ExplicitDiameter(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Errorf("twobit: BFS diameter %d, want 2 (Section VII.C)", d)
	}
}

func TestCounterTransitionSemantics(t *testing.T) {
	m := Counter(3)
	b := circuit.NewBuilder()
	s := []qbf.Var{1, 2, 3}
	tv := []qbf.Var{4, 5, 6}
	tr := m.Trans(b, s, tv)
	for cur := 0; cur < 8; cur++ {
		for nxt := 0; nxt < 8; nxt++ {
			asg := map[qbf.Var]bool{}
			for i := 0; i < 3; i++ {
				asg[s[i]] = cur&(1<<i) != 0
				asg[tv[i]] = nxt&(1<<i) != 0
			}
			want := nxt == (cur+1)%8
			if got := b.Eval(tr, asg); got != want {
				t.Errorf("T(%d,%d) = %v, want %v", cur, nxt, got, want)
			}
		}
	}
}

func TestExplicitDiameterRefusesBigModels(t *testing.T) {
	if _, err := ExplicitDiameter(Counter(20), 12); err == nil {
		t.Error("a 20-bit model must be refused at explicit limit 12")
	}
}

func TestModelsTotal(t *testing.T) {
	// Every reachable state must have at least one successor (T total on
	// the reachable part), otherwise the diameter QBF loses its meaning.
	for _, m := range []*Model{Counter(3), Ring(3), Semaphore(2), DME(3), TwoBit()} {
		b := circuit.NewBuilder()
		s := make([]qbf.Var, m.Bits)
		tv := make([]qbf.Var, m.Bits)
		for i := 0; i < m.Bits; i++ {
			s[i] = qbf.Var(i + 1)
			tv[i] = qbf.Var(m.Bits + i + 1)
		}
		tr := m.Trans(b, s, tv)
		in := m.Init(b, s)
		total := 1 << m.Bits
		asg := map[qbf.Var]bool{}
		set := func(vars []qbf.Var, st int) {
			for i, v := range vars {
				asg[v] = st&(1<<i) != 0
			}
		}
		// BFS reachable set.
		reach := make([]bool, total)
		var frontier []int
		for st := 0; st < total; st++ {
			set(s, st)
			if b.Eval(in, asg) {
				reach[st] = true
				frontier = append(frontier, st)
			}
		}
		for len(frontier) > 0 {
			var next []int
			for _, st := range frontier {
				set(s, st)
				found := false
				for succ := 0; succ < total; succ++ {
					set(tv, succ)
					if b.Eval(tr, asg) {
						found = true
						if !reach[succ] {
							reach[succ] = true
							next = append(next, succ)
						}
					}
				}
				if !found {
					t.Errorf("%s: reachable state %b has no successor", m.Name, st)
				}
			}
			frontier = next
		}
	}
}
