// Package models provides parametric symbolic transition systems — the
// role the NuSMV distribution models (counter, ring, dme, semaphore) play
// in the paper's diameter-calculation suite (Section VII.C). Each model
// exposes its initial-state predicate I(s) and transition relation T(s,s')
// as boolean circuits over caller-supplied state-bit variables, so the
// diameter encoder can instantiate them over the x and y vectors of φn.
//
// The concrete models mirror the paper's selection:
//
//   - Counter(n): an n-bit wrap-around counter; diameter 2^n − 1 (state
//     2^n−1 is the farthest from the all-zeros initial state).
//   - Ring(n): an n-gate inverter ring with asynchronous (one gate per
//     step) updates; the diameter grows with n.
//   - Semaphore(n): n processes competing for a critical section with a
//     single semaphore; the diameter is the constant 3 for every n, the
//     property Fig. 6 (right) relies on: instance size grows, diameter
//     does not.
//   - DME(n): a token-ring distributed mutual exclusion protocol; the
//     diameter is n, growing with the ring size.
//
// ExplicitDiameter computes the reference diameter by explicit-state BFS,
// which the tests use to cross-validate the QBF-based computation.
package models

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/invariant"
	"repro/internal/qbf"
)

// Model is a symbolic transition system over Bits state bits.
type Model struct {
	// Name identifies the model instance, e.g. "counter4".
	Name string
	// Bits is the number of state bits.
	Bits int
	// Init builds I(s) over the state-bit variables s (len Bits).
	Init func(b *circuit.Builder, s []qbf.Var) circuit.Node
	// Trans builds T(s,s') over current bits s and next bits t.
	Trans func(b *circuit.Builder, s, t []qbf.Var) circuit.Node
	// KnownDiameter is the analytically known diameter, or -1.
	KnownDiameter int
}

// allZero builds ∧ ¬s_i.
func allZero(b *circuit.Builder, s []qbf.Var) circuit.Node {
	terms := make([]circuit.Node, len(s))
	for i, v := range s {
		terms[i] = b.Var(v).Neg()
	}
	return b.And(terms...)
}

// eqVec builds ∧ (s_i ≡ t_i).
func eqVec(b *circuit.Builder, s, t []qbf.Var) circuit.Node {
	terms := make([]circuit.Node, len(s))
	for i := range s {
		terms[i] = b.Iff(b.Var(s[i]), b.Var(t[i]))
	}
	return b.And(terms...)
}

// Counter returns the n-bit wrap-around counter: s' = s + 1 (mod 2^n),
// I(s) = (s = 0). Diameter 2^n − 1.
func Counter(n int) *Model {
	if n < 1 {
		invariant.Violated("models: Counter needs n >= 1")
	}
	return &Model{
		Name: fmt.Sprintf("counter%d", n),
		Bits: n,
		Init: allZero,
		Trans: func(b *circuit.Builder, s, t []qbf.Var) circuit.Node {
			// Ripple increment: t_i = s_i ⊕ carry_i, carry_0 = 1,
			// carry_{i+1} = s_i ∧ carry_i.
			carry := b.True()
			terms := make([]circuit.Node, 0, n)
			for i := 0; i < n; i++ {
				terms = append(terms, b.Iff(b.Var(t[i]), b.Xor(b.Var(s[i]), carry)))
				carry = b.And(b.Var(s[i]), carry)
			}
			return b.And(terms...)
		},
		KnownDiameter: (1 << n) - 1,
	}
}

// Ring returns the n-gate inverter ring: gate i drives ¬gate_{i-1} (indices
// mod n); exactly one gate updates per step, the others keep their value.
// The initial state is all zeros. The diameter is left to explicit
// computation (it grows with n; it is not a closed form worth hardcoding).
func Ring(n int) *Model {
	if n < 2 {
		invariant.Violated("models: Ring needs n >= 2")
	}
	return &Model{
		Name: fmt.Sprintf("ring%d", n),
		Bits: n,
		Init: allZero,
		Trans: func(b *circuit.Builder, s, t []qbf.Var) circuit.Node {
			choices := make([]circuit.Node, 0, n)
			for i := 0; i < n; i++ {
				prev := (i + n - 1) % n
				upd := b.Iff(b.Var(t[i]), b.Var(s[prev]).Neg())
				frame := make([]circuit.Node, 0, n)
				for j := 0; j < n; j++ {
					if j != i {
						frame = append(frame, b.Iff(b.Var(t[j]), b.Var(s[j])))
					}
				}
				choices = append(choices, b.And(append(frame, upd)...))
			}
			return b.Or(choices...)
		},
		KnownDiameter: -1,
	}
}

// Semaphore returns the n-process mutual exclusion model with a constant
// diameter of 3 for every n ≥ 1. State bits: w_1..w_n (process wants the
// critical section), c_1..c_n (process is critical), d (some process has
// been critical). One synchronous step: every process starts wanting
// (w' = 1), at most one process with w set may become critical, and d
// latches whether any process was critical. All reachable states are
// within 3 steps of the all-zeros initial state:
// init →1 (w=1,c=0,d=0) →2 (w=1,c=onehot,d=0) →3 (w=1,c',d=1).
func Semaphore(n int) *Model {
	if n < 1 {
		invariant.Violated("models: Semaphore needs n >= 1")
	}
	return &Model{
		Name: fmt.Sprintf("semaphore%d", n),
		Bits: 2*n + 1,
		Init: allZero,
		Trans: func(b *circuit.Builder, s, t []qbf.Var) circuit.Node {
			w := s[:n]
			c := s[n : 2*n]
			d := s[2*n]
			wp := t[:n]
			cp := t[n : 2*n]
			dp := t[2*n]

			terms := make([]circuit.Node, 0, 3*n+3)
			for i := 0; i < n; i++ {
				terms = append(terms, b.Var(wp[i])) // everyone wants next
				// Entering requires having wanted.
				terms = append(terms, b.Implies(b.Var(cp[i]), b.Var(w[i])))
			}
			// Mutual exclusion on the next state: at most one critical.
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					terms = append(terms, b.Or(b.Var(cp[i]).Neg(), b.Var(cp[j]).Neg()))
				}
			}
			// d latches "some process was critical".
			anyC := make([]circuit.Node, n)
			for i := 0; i < n; i++ {
				anyC[i] = b.Var(c[i])
			}
			terms = append(terms, b.Iff(b.Var(dp), b.Or(b.Var(d), b.Or(anyC...))))
			return b.And(terms...)
		},
		KnownDiameter: 3,
	}
}

// DME returns the n-station token-ring mutual exclusion model: a one-hot
// token t_1..t_n plus a critical flag. When not critical, either the token
// passes to the next station or the holder enters the critical section;
// when critical, the holder exits. Diameter n: the farthest state is
// "station n critical" (n−1 token passes plus one entry).
func DME(n int) *Model {
	if n < 2 {
		invariant.Violated("models: DME needs n >= 2")
	}
	return &Model{
		Name: fmt.Sprintf("dme%d", n),
		Bits: n + 1,
		Init: func(b *circuit.Builder, s []qbf.Var) circuit.Node {
			terms := make([]circuit.Node, 0, n+1)
			terms = append(terms, b.Var(s[0])) // token at station 1
			for i := 1; i < n; i++ {
				terms = append(terms, b.Var(s[i]).Neg())
			}
			terms = append(terms, b.Var(s[n]).Neg()) // not critical
			return b.And(terms...)
		},
		Trans: func(b *circuit.Builder, s, t []qbf.Var) circuit.Node {
			tok := s[:n]
			crit := s[n]
			tokP := t[:n]
			critP := t[n]

			pass := make([]circuit.Node, 0, 2*n+1)
			for i := 0; i < n; i++ {
				pass = append(pass, b.Iff(b.Var(tokP[(i+1)%n]), b.Var(tok[i])))
			}
			pass = append(pass, b.Var(crit).Neg(), b.Var(critP).Neg())

			enter := make([]circuit.Node, 0, n+2)
			for i := 0; i < n; i++ {
				enter = append(enter, b.Iff(b.Var(tokP[i]), b.Var(tok[i])))
			}
			enter = append(enter, b.Var(crit).Neg(), b.Var(critP))

			exit := make([]circuit.Node, 0, n+2)
			for i := 0; i < n; i++ {
				exit = append(exit, b.Iff(b.Var(tokP[i]), b.Var(tok[i])))
			}
			exit = append(exit, b.Var(crit), b.Var(critP).Neg())

			return b.Or(b.And(pass...), b.And(enter...), b.And(exit...))
		},
		KnownDiameter: n,
	}
}

// TwoBit returns the worked example of Section VII.C: two state bits,
// I(s1,s2) = ¬s1 ∧ ¬s2 and T = ¬(¬s1 ∧ ¬s2 ∧ s1' ∧ s2'). Its diameter
// is 2.
func TwoBit() *Model {
	return &Model{
		Name: "twobit",
		Bits: 2,
		Init: allZero,
		Trans: func(b *circuit.Builder, s, t []qbf.Var) circuit.Node {
			return b.And(
				b.Var(s[0]).Neg(), b.Var(s[1]).Neg(),
				b.Var(t[0]), b.Var(t[1]),
			).Neg()
		},
		KnownDiameter: 2,
	}
}

// ExplicitDiameter computes the diameter of m (the maximum over reachable
// states of the shortest distance from an initial state) by explicit-state
// BFS over all 2^Bits states, evaluating I and T with the circuit
// interpreter. It refuses models with more than maxBits bits.
func ExplicitDiameter(m *Model, maxBits int) (int, error) {
	if m.Bits > maxBits {
		return 0, fmt.Errorf("models: %s has %d bits, explicit limit is %d", m.Name, m.Bits, maxBits)
	}
	b := circuit.NewBuilder()
	sVars := make([]qbf.Var, m.Bits)
	tVars := make([]qbf.Var, m.Bits)
	for i := 0; i < m.Bits; i++ {
		sVars[i] = qbf.VarOf(i + 1)
		tVars[i] = qbf.VarOf(m.Bits + i + 1)
	}
	initN := m.Init(b, sVars)
	transN := m.Trans(b, sVars, tVars)

	total := 1 << m.Bits
	dist := make([]int, total)
	for i := range dist {
		dist[i] = -1
	}
	asg := make(map[qbf.Var]bool, 2*m.Bits)
	setState := func(vars []qbf.Var, st int) {
		for i, v := range vars {
			asg[v] = st&(1<<i) != 0
		}
	}
	var frontier []int
	for st := 0; st < total; st++ {
		setState(sVars, st)
		if b.Eval(initN, asg) {
			dist[st] = 0
			frontier = append(frontier, st)
		}
	}
	diameter := 0
	for len(frontier) > 0 {
		var next []int
		for _, st := range frontier {
			setState(sVars, st)
			for succ := 0; succ < total; succ++ {
				if dist[succ] != -1 {
					continue
				}
				setState(tVars, succ)
				if b.Eval(transN, asg) {
					dist[succ] = dist[st] + 1
					if dist[succ] > diameter {
						diameter = dist[succ]
					}
					next = append(next, succ)
				}
			}
		}
		frontier = next
	}
	return diameter, nil
}

// All returns the model families of the DIA suite for a size parameter.
var All = map[string]func(n int) *Model{
	"counter":   Counter,
	"ring":      Ring,
	"semaphore": Semaphore,
	"dme":       DME,
}

// EqVec exposes eqVec for the diameter encoder (x_{n+1} ≡ y_n in φn).
func EqVec(b *circuit.Builder, s, t []qbf.Var) circuit.Node { return eqVec(b, s, t) }
