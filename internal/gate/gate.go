package gate

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/qdimacs"
	"repro/internal/result"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/telemetry"
)

// Config tunes a Gate. Backends is required; everything else has safe
// defaults.
type Config struct {
	// Backends lists the qbfd base URLs (e.g. "http://127.0.0.1:8080").
	Backends []string
	// Pool tunes health checking of the backends.
	Pool PoolConfig
	// HedgeDelay is the floor on the hedging delay: a hedged second
	// request is fired after max(HedgeDelay, observed p95 latency) if the
	// primary has not answered (0 = 30ms). DisableHedge turns hedging off.
	HedgeDelay   time.Duration
	DisableHedge bool
	// MaxAttempts caps how many distinct backends one request may try,
	// hedge included (0 = every routable backend).
	MaxAttempts int
	// CacheEntries bounds the canonical-form verdict cache (0 = 4096).
	CacheEntries int
	// MaxBody caps the request body in bytes (0 = 8 MiB), mirroring qbfd.
	MaxBody int64
	// RetryAfter is the hint sent with gate-originated 503s (0 = 1s).
	RetryAfter time.Duration
	// Tracer, when non-nil, receives route/hedge/cachehit events.
	Tracer *telemetry.Tracer
	// HTTPClient overrides the transport used for probes and proxied
	// solves (nil = a dedicated client with sane pooling).
	HTTPClient *http.Client
}

func (c Config) withDefaults() Config {
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = 30 * time.Millisecond
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 8 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	return c
}

// Gate is the front tier. Construct with New, mount Handler, and call
// Stop on shutdown (after draining the HTTP server, so in-flight proxied
// requests finish first).
type Gate struct {
	cfg   Config
	pool  *pool
	ring  *ring
	cache *verdictCache
	lat   *latencyWindow

	fmu     sync.Mutex
	flights map[string]*flight

	requests  atomic.Int64
	routed    atomic.Int64
	failovers atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
	coalesced atomic.Int64
	outage    atomic.Int64 // 503s for lack of any routable backend
	stopping  atomic.Bool
}

// flight is one in-progress solve for a canonical key; concurrent
// requests for the same key (rename variants included) wait for it
// instead of multiplying identical work on the backends.
type flight struct {
	done chan struct{}
	resp server.SolveResponse
	ok   bool // resp is a decided 200, safe to share
}

// New builds a Gate over the configured backends and starts their probe
// loops.
func New(cfg Config) (*Gate, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errNoBackends
	}
	clients := make([]*client.Client, len(cfg.Backends))
	for i, u := range cfg.Backends {
		// One attempt per call: the gate owns retries, failover, and
		// hedging; a client-level retry loop underneath would double them.
		clients[i] = client.New(u, cfg.HTTPClient, client.Policy{MaxAttempts: 1})
	}
	g := &Gate{
		cfg:     cfg,
		ring:    newRing(len(cfg.Backends)),
		cache:   newVerdictCache(cfg.CacheEntries),
		lat:     &latencyWindow{},
		flights: map[string]*flight{},
	}
	g.pool = newPool(cfg.Backends, cfg.Pool, cfg.HTTPClient, clients)
	return g, nil
}

type gateError string

func (e gateError) Error() string { return string(e) }

const errNoBackends = gateError("gate: at least one backend URL is required")

// Stop flips readiness, halts the probe loops, and waits for them. Call
// after the HTTP server has drained so proxied requests are not cut off.
func (g *Gate) Stop() {
	g.stopping.Store(true)
	g.pool.Stop()
}

// Handler returns the gate mux:
//
//	POST /solve     canonicalize → cache → route/hedge → respond
//	POST /v1/solve  alias of /solve
//	GET  /healthz   liveness
//	GET  /readyz    readiness: 503 once Stop has begun
//	GET  /statusz   JSON snapshot: backend states, cache, hedging
func (g *Gate) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", g.handleSolve)
	mux.HandleFunc("/v1/solve", g.handleSolve)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n") //nolint:errcheck // probe body is best-effort
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if g.stopping.Load() {
			w.WriteHeader(result.StatusUnavailable)
			io.WriteString(w, "stopping\n") //nolint:errcheck // probe body is best-effort
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ready\n") //nolint:errcheck // probe body is best-effort
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(g.Snapshot()) //nolint:errcheck // the client may have gone away
	})
	return mux
}

func (g *Gate) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, server.SolveResponse{Error: "POST a SolveRequest to /solve"})
		return
	}
	g.requests.Add(1)
	body, err := io.ReadAll(io.LimitReader(r.Body, g.cfg.MaxBody+1))
	if err != nil {
		writeJSON(w, result.StatusBadRequest, server.SolveResponse{Error: "reading body: " + err.Error()})
		return
	}
	if int64(len(body)) > g.cfg.MaxBody {
		writeJSON(w, http.StatusRequestEntityTooLarge, server.SolveResponse{
			Error: "body exceeds " + strconv.FormatInt(g.cfg.MaxBody, 10) + " bytes"})
		return
	}
	req, err := server.ParseSolveRequest(body)
	if err != nil {
		writeJSON(w, result.StatusBadRequest, server.SolveResponse{Error: err.Error()})
		return
	}
	mode, strategy, err := normalizeOptions(req)
	if err != nil {
		writeJSON(w, result.StatusBadRequest, server.SolveResponse{Error: err.Error()})
		return
	}
	q, err := qdimacs.ReadString(req.Formula)
	if err != nil {
		writeJSON(w, result.StatusBadRequest, server.SolveResponse{Error: "parsing formula: " + err.Error()})
		return
	}
	key := Key(q, mode, strategy)

	// A witness is named in the request's own variables; a cached verdict
	// from a rename variant cannot answer it, so witness requests bypass
	// the cache (and the flight coalescing that shares cached results).
	cacheable := !req.Witness
	if cacheable {
		if resp, ok := g.cache.get(key); ok {
			g.emit(telemetry.KindCacheHit, 1, int64(g.cache.len()))
			writeJSON(w, result.StatusOK, resp)
			return
		}
		g.emit(telemetry.KindCacheHit, 0, int64(g.cache.len()))
	}

	cands := g.pool.candidates(g.ring.order(key))
	if len(cands) == 0 {
		g.outage.Add(1)
		g.writeUnavailable(w, "gate-no-backends", "no routable backend (all ejected or none configured)")
		return
	}

	resp, status := g.solveOrJoin(r.Context(), key, cacheable, *req, cands)
	if result.StatusRetryable(status) {
		w.Header().Set("Retry-After", strconv.FormatInt(int64(g.cfg.RetryAfter/time.Second)+1, 10))
	}
	writeJSON(w, status, resp)
}

// normalizeOptions validates the engine-selecting options the canonical
// key incorporates, mirroring the backend's own contract so a request the
// backend would 400 is rejected at the edge (and never pollutes the ring
// or cache key space).
func normalizeOptions(req *server.SolveRequest) (mode, strategy string, err error) {
	mode = req.Mode
	if mode == "" {
		mode = "po"
	}
	switch mode {
	case "po", "portfolio":
		if req.Strategy != "" {
			return "", "", gateError(`strategy "` + req.Strategy + `" is only meaningful with mode "to"`)
		}
	case "to":
		switch req.Strategy {
		case "", "eu-au", "eu-ad", "ed-au", "ed-ad":
			strategy = req.Strategy
			if strategy == "" {
				strategy = "eu-au"
			}
		default:
			return "", "", gateError(`unknown strategy "` + req.Strategy + `"`)
		}
	default:
		return "", "", gateError(`unknown mode "` + req.Mode + `"`)
	}
	return mode, strategy, nil
}

// writeUnavailable is the degradation response: 503 with a Retry-After
// hint, the same shape qbfd uses for shed load.
func (g *Gate) writeUnavailable(w http.ResponseWriter, shed, msg string) {
	w.Header().Set("Retry-After", strconv.FormatInt(int64(g.cfg.RetryAfter/time.Second)+1, 10))
	writeJSON(w, result.StatusUnavailable, server.SolveResponse{Shed: shed, Error: "load shed: " + msg})
}

func writeJSON(w http.ResponseWriter, status int, resp server.SolveResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(resp) //nolint:errcheck // the client may have gone away; nothing to do
}

// solveOrJoin coalesces concurrent cacheable requests for one canonical
// key onto a single backend solve. The first request becomes the flight
// leader and solves; followers wait and, when the leader lands a decided
// 200, are served from the freshly filled cache entry. A failed leader
// does not poison followers — each falls back to its own solve attempt.
func (g *Gate) solveOrJoin(ctx context.Context, key string, cacheable bool, req server.SolveRequest, cands []*backend) (server.SolveResponse, int) {
	if !cacheable {
		resp, status := g.solveVia(ctx, req, cands)
		return resp, status
	}
	g.fmu.Lock()
	if fl, ok := g.flights[key]; ok {
		g.fmu.Unlock()
		select {
		case <-fl.done:
			if fl.ok {
				g.coalesced.Add(1)
				resp := fl.resp
				resp.Source = server.SourceCache
				return resp, result.StatusOK
			}
		case <-ctx.Done():
			return server.SolveResponse{Stop: result.StopCancelled.String(), Error: "client went away while coalesced"}, result.StatusUnavailable
		}
		// The leader failed; solve independently rather than serializing
		// every follower behind repeated failures.
		return g.solveVia(ctx, req, cands)
	}
	fl := &flight{done: make(chan struct{})}
	g.flights[key] = fl
	g.fmu.Unlock()
	defer func() {
		g.fmu.Lock()
		delete(g.flights, key)
		g.fmu.Unlock()
		close(fl.done)
	}()

	resp, status := g.solveVia(ctx, req, cands)
	if status == result.StatusOK && decided(resp) {
		g.cache.put(key, resp)
		fl.resp = resp
		fl.resp.Witness = nil
		fl.ok = true
	}
	return resp, status
}

func decided(resp server.SolveResponse) bool {
	return resp.Verdict == result.True.String() || resp.Verdict == result.False.String()
}

// attemptOut is one backend attempt's outcome.
type attemptOut struct {
	b       *backend
	ordinal int
	hedged  bool // launched by the hedge timer, not failover
	out     client.Outcome
	err     error
	took    time.Duration
}

// solveVia runs one request against the candidate backends: the primary
// in ring order; a hedged second request after max(HedgeDelay, p95) if
// the primary is still out; immediate deterministic failover to the next
// candidate whenever an attempt comes back retryable (transport error,
// 429/503/504). The first final outcome wins and every other in-flight
// attempt is cancelled via its context. When every candidate fails
// retryably the last well-formed rejection is forwarded (503 when even
// that is missing), never a hang.
func (g *Gate) solveVia(ctx context.Context, req server.SolveRequest, cands []*backend) (server.SolveResponse, int) {
	limit := len(cands)
	if g.cfg.MaxAttempts > 0 && g.cfg.MaxAttempts < limit {
		limit = g.cfg.MaxAttempts
	}
	actx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	resCh := make(chan attemptOut, limit)
	next := 0
	inflight := 0
	launch := func(hedged bool) {
		if next >= limit {
			return
		}
		b := cands[next]
		ordinal := next
		next++
		inflight++
		g.routed.Add(1)
		if ordinal > 0 && !hedged {
			g.failovers.Add(1)
		}
		g.emit(telemetry.KindRoute, int64(b.idx), int64(ordinal))
		b.mu.Lock()
		b.requests++
		b.mu.Unlock()
		go func() {
			start := time.Now()
			out, err := b.cl.Solve(actx, req)
			took := time.Since(start)
			// Passive health: a transport failure is evidence the backend
			// is gone; any well-formed HTTP response proves liveness (shed
			// and drain statuses included — /readyz probes handle those).
			// A failure caused by our own cancellation proves nothing.
			if err != nil {
				if actx.Err() == nil {
					b.recordFailure(g.pool.cfg, true)
				}
			} else {
				b.recordSuccess(g.pool.cfg)
			}
			resCh <- attemptOut{b: b, ordinal: ordinal, hedged: hedged, out: out, err: err, took: took}
		}()
	}
	launch(false)

	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if !g.cfg.DisableHedge && limit > 1 {
		hedgeTimer = time.NewTimer(g.hedgeDelay())
		hedgeC = hedgeTimer.C
		defer hedgeTimer.Stop()
	}

	hedgeLaunched := false
	hedgeIdx := int64(-1)
	var lastRetryable *attemptOut
	for inflight > 0 {
		select {
		case r := <-resCh:
			inflight--
			if r.err == nil && !result.StatusRetryable(r.out.Status) {
				// Final outcome: verdicts, caller-budget stops, 400s, 500s.
				if hedgeLaunched {
					won := int64(0)
					if r.hedged {
						won = 1
						g.hedgeWins.Add(1)
					}
					g.hedges.Add(1)
					g.emit(telemetry.KindHedge, won, hedgeIdx)
				}
				if r.out.Status == result.StatusOK {
					g.lat.add(r.took)
				}
				cancelAll()
				return r.out.Resp, r.out.Status
			}
			if r.err == nil {
				saved := r
				lastRetryable = &saved
			}
			// Retryable: deterministic failover to the next ring node.
			launch(false)
		case <-hedgeC:
			hedgeC = nil
			if inflight > 0 && next < limit {
				hedgeIdx = int64(cands[next].idx)
				hedgeLaunched = true
				launch(true)
			}
		case <-ctx.Done():
			cancelAll()
			return server.SolveResponse{Stop: result.StopCancelled.String(), Error: "client went away"},
				result.StatusUnavailable
		}
	}
	if lastRetryable != nil {
		return lastRetryable.out.Resp, lastRetryable.out.Status
	}
	g.outage.Add(1)
	return server.SolveResponse{Shed: "gate-backends-unreachable",
		Error: "load shed: every candidate backend failed at the transport layer"}, result.StatusUnavailable
}

// hedgeDelay derives the hedging delay from observed latency: the p95 of
// recent successful solves, floored at the configured minimum so an
// all-fast workload does not hedge every single request.
func (g *Gate) hedgeDelay() time.Duration {
	d := g.lat.p95()
	if d < g.cfg.HedgeDelay {
		d = g.cfg.HedgeDelay
	}
	return d
}

func (g *Gate) emit(k telemetry.Kind, a, b int64) {
	g.cfg.Tracer.Emit(k, 0, 0, a, b)
}

// latencyWindow is a fixed-size ring of recent successful-solve latencies
// feeding the hedge delay.
type latencyWindow struct {
	mu      sync.Mutex
	samples [256]time.Duration
	n       int // total ever added
}

func (l *latencyWindow) add(d time.Duration) {
	l.mu.Lock()
	l.samples[l.n%len(l.samples)] = d
	l.n++
	l.mu.Unlock()
}

func (l *latencyWindow) p95() time.Duration {
	l.mu.Lock()
	count := l.n
	if count > len(l.samples) {
		count = len(l.samples)
	}
	buf := make([]time.Duration, count)
	copy(buf, l.samples[:count])
	l.mu.Unlock()
	if count == 0 {
		return 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[count*95/100]
}

// BackendStats is one backend's snapshot row.
type BackendStats struct {
	URL        string `json:"url"`
	State      string `json:"state"`
	Requests   int64  `json:"requests"`
	Failures   int64  `json:"failures"`
	Probes     int64  `json:"probes"`
	ProbeFails int64  `json:"probe_fails"`
	Ejections  int64  `json:"ejections"`
}

// Stats is the gate's point-in-time snapshot (the /statusz payload).
type Stats struct {
	Requests     int64          `json:"requests"`
	Routed       int64          `json:"routed"`
	Failovers    int64          `json:"failovers"`
	Hedges       int64          `json:"hedges"`
	HedgeWins    int64          `json:"hedge_wins"`
	CacheHits    int64          `json:"cache_hits"`
	CacheMisses  int64          `json:"cache_misses"`
	CacheEntries int            `json:"cache_entries"`
	Coalesced    int64          `json:"coalesced"`
	Outage503    int64          `json:"outage_503"`
	Backends     []BackendStats `json:"backends"`
}

// Snapshot collects the gate counters and per-backend health.
func (g *Gate) Snapshot() Stats {
	hits, misses, entries := g.cache.stats()
	st := Stats{
		Requests:     g.requests.Load(),
		Routed:       g.routed.Load(),
		Failovers:    g.failovers.Load(),
		Hedges:       g.hedges.Load(),
		HedgeWins:    g.hedgeWins.Load(),
		CacheHits:    hits,
		CacheMisses:  misses,
		CacheEntries: entries,
		Coalesced:    g.coalesced.Load(),
		Outage503:    g.outage.Load(),
	}
	for _, b := range g.pool.backends {
		b.mu.Lock()
		st.Backends = append(st.Backends, BackendStats{
			URL: b.url, State: b.state.String(), Requests: b.requests, Failures: b.failures,
			Probes: b.probes, ProbeFails: b.probeFails, Ejections: b.ejections,
		})
		b.mu.Unlock()
	}
	return st
}
