// Package gate is the fault-tolerant front tier over a fleet of qbfd
// backends: it canonicalizes each solve request, routes it over a
// consistent-hash ring of health-checked backends with deterministic
// failover and hedged retries, and serves repeated formulas from a bounded
// LRU verdict cache keyed on the canonical form.
//
// The canonical form is the load-bearing idea. The paper's application
// domains (bounded model checking, circuit diameter) emit streams of
// near-identical formulas whose verdicts are invariant under variable
// renaming and clause reordering — exactly the transformations the core
// metamorphic suite proves truth-preserving. Canonicalization renames
// variables to first-use order over the quantifier tree and sorts the
// matrix, so every rename/permute variant of a formula folds onto one
// cache key and one ring position.
//
// See DESIGN.md §11 for the architecture, the backend health state
// machine, the hedging policy, and the degradation contract.
package gate

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"

	"repro/internal/qbf"
)

// CanonicalPerm returns the first-use renaming of q's variables as a
// 1-based permutation table: variables are numbered 1..n in quantifier-
// tree traversal order (roots in declaration order, blocks depth-first,
// variables in within-block order). Free matrix variables — which the
// solver binds in an outermost existential block — are numbered after the
// bound ones, in increasing original order, so the table is total over
// 1..MaxVar even for non-closed inputs.
func CanonicalPerm(q *qbf.QBF) []qbf.Var {
	maxVar := q.Prefix.MaxVar()
	if mv := q.MaxVar(); mv > maxVar {
		maxVar = mv
	}
	perm := make([]qbf.Var, maxVar+1)
	next := qbf.MinVar
	var walk func(b *qbf.Block)
	walk = func(b *qbf.Block) {
		for _, v := range b.Vars {
			if perm[v] == 0 {
				perm[v] = next
				next++
			}
		}
		for _, c := range b.Children {
			walk(c)
		}
	}
	for _, r := range q.Prefix.Roots() {
		walk(r)
	}
	for v := qbf.MinVar; int(v) <= maxVar; v++ {
		if perm[v] == 0 {
			perm[v] = next
			next++
		}
	}
	return perm
}

// Canonicalize returns the canonical presentation of q: variables renamed
// to first-use order and the matrix sorted (literals within each clause by
// variable — qbf.Rename normalizes that — and clauses lexicographically).
// The canonical form is idempotent: canonicalizing a canonical formula is
// the identity, which the canon tests pin.
func Canonicalize(q *qbf.QBF) *qbf.QBF {
	cq := qbf.Rename(q, CanonicalPerm(q))
	sort.Slice(cq.Matrix, func(i, j int) bool { return clauseLess(cq.Matrix[i], cq.Matrix[j]) })
	return cq
}

// clauseLess orders clauses lexicographically by their (normalized,
// variable-sorted) literals, shorter prefix first.
func clauseLess(a, b qbf.Clause) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Key hashes a request's canonical form together with the options that
// select the engine (mode and prenexing strategy): the full routing and
// cache identity of a solve request. Two requests share a key exactly when
// they are the same formula up to renaming and clause order, asked of the
// same engine configuration. The key is a hex SHA-256, so collisions
// between semantically distinct instances happen only by hash-function
// accident.
func Key(q *qbf.QBF, mode, strategy string) string {
	sum := sha256.Sum256([]byte(serialize(Canonicalize(q), mode, strategy)))
	return hex.EncodeToString(sum[:])
}

// serialize renders the canonical formula plus options into the byte
// string that is hashed. The format is private to the hash — it only has
// to be injective over (prefix shape, matrix, options) — but it is kept
// readable to make golden-test failures diagnosable.
func serialize(cq *qbf.QBF, mode, strategy string) string {
	var b []byte
	b = append(b, "p:"...)
	var walk func(blk *qbf.Block)
	walk = func(blk *qbf.Block) {
		if blk.Quant == qbf.Exists {
			b = append(b, 'e')
		} else {
			b = append(b, 'a')
		}
		for i, v := range blk.Vars {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, int64(v), 10)
		}
		b = append(b, '{')
		for _, c := range blk.Children {
			walk(c)
		}
		b = append(b, '}')
	}
	for _, r := range cq.Prefix.Roots() {
		walk(r)
	}
	b = append(b, "|m:"...)
	for _, c := range cq.Matrix {
		for i, l := range c {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, int64(l), 10)
		}
		b = append(b, ';')
	}
	b = append(b, "|o:"...)
	b = append(b, mode...)
	b = append(b, '/')
	b = append(b, strategy...)
	return string(b)
}
