//go:build qbfdebug

// Chaos coverage for the front tier: three real qbfd servers behind
// misbehaving proxies (kill, hang, slow, flap), a storm of concurrent
// rename-variant requests, and a total-outage window. Run with -race;
// the assertions are:
//
//   - the gate answers every request with a documented status — transport
//     drops toward the client are zero, and shed responses stay within a
//     declared budget;
//   - every 200 verdict (live, hedged, failed-over, or cache-served)
//     agrees with a direct sequential solve of the same instance;
//   - concurrent rename variants of one formula coalesce onto one
//     canonical cache entry and hit it (cache hits > 0);
//   - during a total backend outage cached formulas keep answering and
//     uncacheable requests shed cleanly;
//   - no goroutines outlive the gate and its backends.
package gate

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/qbf"
	"repro/internal/qdimacs"
	"repro/internal/randqbf"
	"repro/internal/result"
	"repro/internal/server"
)

// chaos proxy modes.
const (
	chaosPass int32 = iota
	chaosSlow       // 20ms latency before forwarding
	chaosHang       // swallow the request until the client disconnects
	chaosKill       // cut the TCP connection mid-request
	chaosFlap       // alternate kill / pass per request
)

// chaosProxy fronts one backend and misbehaves on command, health
// endpoints included — so active probes see the same failures traffic
// does.
type chaosProxy struct {
	mode  atomic.Int32
	count atomic.Int64
	inner http.Handler
}

func (p *chaosProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := p.count.Add(1)
	switch p.mode.Load() {
	case chaosSlow:
		time.Sleep(20 * time.Millisecond)
	case chaosHang:
		// The body must be drained for the server to notice the
		// disconnect that ends the hang.
		drain(r)
		<-r.Context().Done()
		return
	case chaosKill:
		kill(w)
		return
	case chaosFlap:
		if n%2 == 0 {
			kill(w)
			return
		}
	}
	p.inner.ServeHTTP(w, r)
}

func drain(r *http.Request) {
	buf := make([]byte, 4096)
	for {
		if _, err := r.Body.Read(buf); err != nil {
			return
		}
	}
}

func kill(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close() //nolint:errcheck // deliberate mid-request kill
		}
	}
}

// chaosInstance is one pool entry: the instance and its oracle verdict
// from an unbudgeted sequential solve.
type chaosInstance struct {
	q       *qbf.QBF
	text    string
	verdict core.Verdict
}

func chaosPoolGate(t *testing.T, n int) []chaosInstance {
	t.Helper()
	pool := make([]chaosInstance, n)
	for i := range pool {
		q := randqbf.Prob(randqbf.ProbParams{
			Blocks: 2, BlockSize: 6, Clauses: 26, Length: 3, MaxUniversal: 1, Seed: int64(500 + i),
		})
		text, err := qdimacs.WriteString(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Solve(context.Background(), q, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict == core.Unknown {
			t.Fatalf("oracle could not decide instance %d", i)
		}
		pool[i] = chaosInstance{q: q, text: text, verdict: res.Verdict}
	}
	return pool
}

// renameVariant renders a rename variant of inst: a random bijection on
// its variables. Canonicalization must fold every variant onto the
// original's cache key.
func renameVariant(t *testing.T, inst chaosInstance, seed int64) string {
	t.Helper()
	maxVar := inst.q.MaxVar()
	if pm := inst.q.Prefix.MaxVar(); pm > maxVar {
		maxVar = pm
	}
	perm := qbf.IdentityPerm(maxVar)
	rng := rand.New(rand.NewSource(seed))
	for v := maxVar; v > 1; v-- {
		u := 1 + rng.Intn(v)
		perm[v], perm[u] = perm[u], perm[v]
	}
	text, err := qdimacs.WriteString(qbf.Rename(inst.q, perm))
	if err != nil {
		t.Fatal(err)
	}
	return text
}

func TestChaosGateStorm(t *testing.T) {
	pool := chaosPoolGate(t, 6)
	baseGoroutines := runtime.NumGoroutine()

	// Three real solve servers, each behind a chaos proxy.
	var backends []*server.Server
	var proxies []*chaosProxy
	var fronts []*httptest.Server
	var urls []string
	for i := 0; i < 3; i++ {
		s := server.New(server.Config{Workers: 2, QueueDepth: 256, QueueTimeout: 10 * time.Second})
		p := &chaosProxy{inner: s.Handler()}
		ts := httptest.NewServer(p)
		backends = append(backends, s)
		proxies = append(proxies, p)
		fronts = append(fronts, ts)
		urls = append(urls, ts.URL)
	}

	g, err := New(Config{
		Backends:   urls,
		HedgeDelay: 10 * time.Millisecond,
		Pool: PoolConfig{ProbeInterval: 50 * time.Millisecond, ProbeTimeout: 300 * time.Millisecond,
			SuspectAfter: 1, EjectAfter: 3, RecoverAfter: 1, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(g.Handler())

	// Prime the cache with instance 0 so the outage window below has a
	// cached verdict to serve.
	if status, resp, _ := postSolve(t, front.URL, server.SolveRequest{Formula: pool[0].text}); status != result.StatusOK ||
		resp.Verdict != pool[0].verdict.String() {
		t.Fatalf("prime solve: status=%d %+v", status, resp)
	}

	// The chaos timeline runs concurrently with the storm: backend 0 dies
	// and comes back, backend 1 hangs, backend 2 flaps, then everything
	// heals.
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		step := func(d time.Duration) { time.Sleep(d) }
		step(5 * time.Millisecond)
		proxies[0].mode.Store(chaosKill)
		step(30 * time.Millisecond)
		proxies[1].mode.Store(chaosHang)
		proxies[2].mode.Store(chaosFlap)
		step(30 * time.Millisecond)
		proxies[0].mode.Store(chaosSlow)
		step(30 * time.Millisecond)
		proxies[1].mode.Store(chaosPass)
		proxies[2].mode.Store(chaosPass)
		proxies[0].mode.Store(chaosPass)
	}()

	const storm = 180
	var wg sync.WaitGroup
	errs := make(chan error, storm)
	var decided, shed atomic.Int64
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inst := pool[i%len(pool)]
			req := server.SolveRequest{Formula: inst.text}
			if i%3 != 0 {
				// Two thirds of the storm are rename variants: all of one
				// instance's variants share a canonical key, so concurrent
				// cache fills and hits must agree with the oracle.
				req.Formula = renameVariant(t, inst, int64(i))
			}
			if i%9 == 0 {
				req.Witness = true // uncacheable path under chaos
			}
			status, resp, _ := postSolve(t, front.URL, req)
			switch status {
			case result.StatusOK:
				decided.Add(1)
				if resp.Verdict != inst.verdict.String() {
					errs <- fmt.Errorf("request %d: verdict %q (source %q), oracle %v",
						i, resp.Verdict, resp.Source, inst.verdict)
				}
			case result.StatusUnavailable, result.StatusTooManyRequests:
				shed.Add(1)
				if resp.Shed == "" && resp.Stop != "cancelled" {
					errs <- fmt.Errorf("request %d: bare %d: %+v", i, status, resp)
				}
			default:
				errs <- fmt.Errorf("request %d: unexpected status %d: %+v", i, status, resp)
			}
		}(i)
	}
	wg.Wait()
	<-chaosDone
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	if decided.Load() == 0 {
		t.Fatal("storm produced no verdicts at all")
	}
	// Shed budget: with three backends, failover and hedging must absorb
	// most of the chaos; a majority of shed answers means they did not.
	if s := shed.Load(); s > storm/2 {
		t.Fatalf("%d/%d requests shed; failover should have absorbed more", s, storm)
	}
	st := g.Snapshot()
	if st.CacheHits == 0 {
		t.Error("no cache hits despite concurrent rename variants")
	}
	t.Logf("storm: %d decided, %d shed; snapshot %+v", decided.Load(), shed.Load(), st)

	// Total outage: every backend dies. The primed formula (as a fresh
	// rename variant) must keep answering from the cache; an uncacheable
	// witness request must shed with a retry hint.
	for _, p := range proxies {
		p.mode.Store(chaosKill)
	}
	waitFor(t, 5*time.Second, func() bool {
		for _, b := range g.Snapshot().Backends {
			if b.State != "ejected" {
				return false
			}
		}
		return true
	})
	status, resp, _ := postSolve(t, front.URL, server.SolveRequest{Formula: renameVariant(t, pool[0], 999)})
	if status != result.StatusOK || resp.Source != server.SourceCache || resp.Verdict != pool[0].verdict.String() {
		t.Fatalf("outage cache serve: status=%d %+v", status, resp)
	}
	status, resp, hdr := postSolve(t, front.URL, server.SolveRequest{Formula: pool[0].text, Witness: true})
	if status != result.StatusUnavailable || resp.Shed == "" || hdr.Get("Retry-After") == "" {
		t.Fatalf("outage witness request: status=%d %+v", status, resp)
	}

	// Heal and recover: probes must re-promote every backend and live
	// solving must resume.
	for _, p := range proxies {
		p.mode.Store(chaosPass)
	}
	waitFor(t, 5*time.Second, func() bool {
		for _, b := range g.Snapshot().Backends {
			if b.State != "healthy" {
				return false
			}
		}
		return true
	})
	status, resp, _ = postSolve(t, front.URL, server.SolveRequest{Formula: pool[1].text, Witness: true})
	if status != result.StatusOK || resp.Verdict != pool[1].verdict.String() {
		t.Fatalf("post-recovery solve: status=%d %+v", status, resp)
	}

	// Teardown and goroutine hygiene.
	front.Close()
	g.Stop()
	for i, s := range backends {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := s.Drain(ctx); err != nil {
			t.Fatalf("drain backend %d: %v", i, err)
		}
		cancel()
		fronts[i].Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= baseGoroutines+8 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), baseGoroutines)
}
