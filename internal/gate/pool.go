package gate

import (
	"context"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/server/client"
)

// State is one backend's position in the health state machine.
type State int32

const (
	// StateHealthy: the backend passes probes and serves requests; it is
	// routed to in ring order.
	StateHealthy State = iota
	// StateSuspect: recent probe or request failures crossed SuspectAfter;
	// the backend is still routable but only after every healthy backend
	// has been tried (or hedged against).
	StateSuspect
	// StateEjected: failures crossed EjectAfter; the backend receives no
	// traffic at all until RecoverAfter consecutive probe successes
	// re-promote it (hysteresis — one lucky probe is not recovery).
	StateEjected
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateSuspect:
		return "suspect"
	case StateEjected:
		return "ejected"
	default:
		return "invalid"
	}
}

// PoolConfig tunes health checking. The zero value probes every second
// with a 500 ms timeout, suspects after 2 consecutive failures, ejects
// after 4, and re-promotes after 2 consecutive successes.
type PoolConfig struct {
	// ProbeInterval is the base period between health probes of one
	// backend; each wait is jittered ±25% so a fleet of gates does not
	// synchronize its probes (0 = 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (0 = 500ms).
	ProbeTimeout time.Duration
	// SuspectAfter is the consecutive-failure count (probes and passive
	// request outcomes combined) that demotes healthy → suspect (0 = 2).
	SuspectAfter int
	// EjectAfter is the consecutive-failure count that demotes → ejected
	// (0 = 4; clamped to at least SuspectAfter).
	EjectAfter int
	// RecoverAfter is the consecutive-success count that re-promotes a
	// suspect or ejected backend to healthy (0 = 2).
	RecoverAfter int
	// Seed makes probe jitter deterministic for tests (0 = clock-derived).
	Seed int64
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 4
	}
	if c.EjectAfter < c.SuspectAfter {
		c.EjectAfter = c.SuspectAfter
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 2
	}
	return c
}

// backend is one qbfd instance: its solve client, its health state
// machine, and its counters. The state machine folds two evidence streams:
// active probes (GET /healthz + /readyz, run by the pool's probe loop) and
// passive outcomes (did a proxied request reach the backend and get any
// well-formed HTTP response back). Both feed the same consecutive
// fail/success counters, so a crashed backend is demoted by the very
// requests that discover it — typically faster than the next probe.
type backend struct {
	idx int
	url string
	cl  *client.Client

	mu    sync.Mutex
	state State
	fails int // consecutive failures
	oks   int // consecutive successes while not healthy

	requests   int64 // proxied solve attempts
	failures   int64 // passive failures (transport errors)
	probes     int64
	probeFails int64
	ejections  int64
}

func (b *backend) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// recordFailure advances the state machine on one failure observation.
// It returns the resulting state.
func (b *backend) recordFailure(cfg PoolConfig, passive bool) State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if passive {
		b.failures++
	}
	b.oks = 0
	b.fails++
	switch {
	case b.fails >= cfg.EjectAfter:
		if b.state != StateEjected {
			b.ejections++
		}
		b.state = StateEjected
	case b.fails >= cfg.SuspectAfter && b.state == StateHealthy:
		b.state = StateSuspect
	}
	return b.state
}

// recordSuccess advances the state machine on one success observation.
// Re-promotion is hysteretic: RecoverAfter consecutive successes are
// required before a suspect or ejected backend serves normal traffic
// again, so a flapping backend cannot oscillate into the routing set on
// every lucky probe.
func (b *backend) recordSuccess(cfg PoolConfig) State {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.state == StateHealthy {
		return b.state
	}
	b.oks++
	if b.oks >= cfg.RecoverAfter {
		b.state = StateHealthy
		b.oks = 0
	}
	return b.state
}

// pool owns the backends and their probe loops.
type pool struct {
	cfg      PoolConfig
	backends []*backend
	hc       *http.Client

	rngMu sync.Mutex
	rng   *rand.Rand

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newPool(urls []string, cfg PoolConfig, hc *http.Client, solveClients []*client.Client) *pool {
	p := &pool{
		cfg:  cfg.withDefaults(),
		hc:   hc,
		stop: make(chan struct{}),
	}
	seed := p.cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	p.rng = rand.New(rand.NewSource(seed))
	for i, u := range urls {
		p.backends = append(p.backends, &backend{idx: i, url: u, cl: solveClients[i]})
	}
	p.wg.Add(len(p.backends))
	for _, b := range p.backends {
		go p.probeLoop(b)
	}
	return p
}

// Stop halts the probe loops and waits for them to exit. Idempotent.
func (p *pool) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// probeLoop actively probes one backend forever (until Stop): a jittered
// wait, then GET /healthz and GET /readyz under the probe timeout. A
// draining qbfd keeps /healthz green but flips /readyz to 503, so probing
// both routes traffic away from a draining backend within one probe
// interval while still distinguishing "draining" from "dead" in the
// counters.
func (p *pool) probeLoop(b *backend) {
	defer p.wg.Done()
	for {
		t := time.NewTimer(p.jitteredInterval())
		select {
		case <-p.stop:
			t.Stop()
			return
		case <-t.C:
		}
		p.probe(b)
	}
}

// jitteredInterval spreads probes over ±25% of the configured period.
func (p *pool) jitteredInterval() time.Duration {
	base := p.cfg.ProbeInterval
	p.rngMu.Lock()
	j := p.rng.Int63n(int64(base)/2 + 1)
	p.rngMu.Unlock()
	return base*3/4 + time.Duration(j)
}

func (p *pool) probe(b *backend) {
	b.mu.Lock()
	b.probes++
	b.mu.Unlock()
	ok := p.probeOnce(b.url+"/healthz") && p.probeOnce(b.url+"/readyz")
	if ok {
		b.recordSuccess(p.cfg)
		return
	}
	b.mu.Lock()
	b.probeFails++
	b.mu.Unlock()
	b.recordFailure(p.cfg, false)
}

func (p *pool) probeOnce(url string) bool {
	// The pool owns its probe lifecycle; probes are bounded by the probe
	// timeout and stopped via the pool's stop channel, not a caller ctx.
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.ProbeTimeout) //lint:allow L8 pool-owned probe lifecycle root
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close() //nolint:errcheck // probe body is irrelevant
	return resp.StatusCode == http.StatusOK
}

// candidates maps a ring failover order to the backends that may serve a
// request right now: every healthy backend first (in ring order), then
// every suspect one (in ring order). Ejected backends are excluded
// entirely — only the probe loop can bring them back.
func (p *pool) candidates(order []int) []*backend {
	var healthy, suspect []*backend
	for _, idx := range order {
		b := p.backends[idx]
		switch b.State() {
		case StateHealthy:
			healthy = append(healthy, b)
		case StateSuspect:
			suspect = append(suspect, b)
		}
	}
	return append(healthy, suspect...)
}
