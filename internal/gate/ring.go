package gate

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over backend indices. Each backend owns
// ringReplicas virtual points; a request key lands at its hash and walks
// clockwise, so identical (canonical) formulas always meet the same
// backend — which is what lets per-backend OS page cache, JIT'd breaker
// state, and any future backend-local caching pay off — and the failover
// order for a key is deterministic: the next distinct backend on the ring,
// not a random pick.
type ring struct {
	points []ringPoint
	n      int // distinct backends
}

type ringPoint struct {
	h   uint64
	idx int
}

// ringReplicas is the virtual-node count per backend. 128 keeps the
// keyspace split within a few percent of even for small fleets.
const ringReplicas = 128

func newRing(n int) *ring {
	r := &ring{n: n}
	r.points = make([]ringPoint, 0, n*ringReplicas)
	for i := 0; i < n; i++ {
		for v := 0; v < ringReplicas; v++ {
			r.points = append(r.points, ringPoint{h: hash64("b" + strconv.Itoa(i) + "#" + strconv.Itoa(v)), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].h < r.points[b].h })
	return r
}

// order returns every backend index exactly once, in the deterministic
// failover order for key: the ring successor first, then the next distinct
// backend clockwise, and so on.
func (r *ring) order(key string) []int {
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	for i := 0; i < len(r.points) && len(out) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.idx] {
			seen[p.idx] = true
			out = append(out, p.idx)
		}
	}
	return out
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never errors
	return h.Sum64()
}
