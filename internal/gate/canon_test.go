package gate

import (
	"testing"

	"repro/internal/qbf"
	"repro/internal/qdimacs"
)

// basePrenex is a small 3-level prenex instance; baseRenamed applies the
// variable permutation 1→3, 2→1, 3→4, 4→2 and shuffles the clause order.
// Canonicalization must fold both onto one key.
const basePrenex = `p cnf 4 3
e 1 2 0
a 3 0
e 4 0
1 -3 4 0
-1 2 0
2 3 -4 0
`

const baseRenamed = `p cnf 4 3
e 3 1 0
a 4 0
e 2 0
1 4 -2 0
3 -4 2 0
-3 1 0
`

// baseTree is the paper's tree prefix example; treeRenamed applies
// 1→7, 2→5, 3→1, 4→2, 5→6, 6→3, 7→4 and reorders the clauses.
const baseTree = `p qtree 7 3
q e 1 0
q a 2 0
q e 3 4 0
u 2
q a 5 0
q e 6 7 0
u 3
1 3 4 0
2 -3 0
1 6 -7 0
`

const treeRenamed = `p qtree 7 3
q e 7 0
q a 5 0
q e 1 2 0
u 2
q a 6 0
q e 3 4 0
u 3
7 3 -4 0
7 1 2 0
5 -1 0
`

func parse(t *testing.T, text string) *qbf.QBF {
	t.Helper()
	q, err := qdimacs.ReadString(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return q
}

func TestKeyRenameAndPermuteInvariant(t *testing.T) {
	cases := []struct {
		name string
		a, b string
	}{
		{"prenex", basePrenex, baseRenamed},
		{"tree", baseTree, treeRenamed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ka := Key(parse(t, tc.a), "po", "")
			kb := Key(parse(t, tc.b), "po", "")
			if ka != kb {
				t.Errorf("rename/permute variant changed key:\n a=%s\n b=%s", ka, kb)
			}
		})
	}
}

// TestKeyGolden pins the exact canonical hashes. A change here means every
// deployed gate's cache keys and ring placement shift on upgrade — that
// can be a deliberate choice, but never an accident.
func TestKeyGolden(t *testing.T) {
	cases := []struct {
		name     string
		text     string
		mode     string
		strategy string
		want     string
	}{
		{"prenex-po", basePrenex, "po", "", "47894d590a82c2e1e3183a07d9b1fdadd32d864e3a73253bcdaa2cc9352ce8d5"},
		{"prenex-to", basePrenex, "to", "eu-au", "cb9e227c554b1be3c93cadf9a129753725ffee976a39830d642962111bd6911c"},
		{"tree-po", baseTree, "po", "", "474e0da493322132e7c7ed2126b653dde9fd5fa7a3939d794118352141d5297d"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Key(parse(t, tc.text), tc.mode, tc.strategy)
			if got != tc.want {
				t.Errorf("Key(%s, %s/%s) = %s, want %s", tc.name, tc.mode, tc.strategy, got, tc.want)
			}
		})
	}
}

func TestKeyDistinguishesInstancesAndOptions(t *testing.T) {
	base := Key(parse(t, basePrenex), "po", "")
	// One flipped literal sign is a different formula.
	flipped := `p cnf 4 3
e 1 2 0
a 3 0
e 4 0
1 3 4 0
-1 2 0
2 3 -4 0
`
	keys := map[string]string{
		"flipped literal": Key(parse(t, flipped), "po", ""),
		"mode to":         Key(parse(t, basePrenex), "to", "eu-au"),
		"mode portfolio":  Key(parse(t, basePrenex), "portfolio", ""),
		"strategy ed-ad":  Key(parse(t, basePrenex), "to", "ed-ad"),
		"tree formula":    Key(parse(t, baseTree), "po", ""),
	}
	seen := map[string]string{base: "base"}
	for name, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Errorf("%s collides with %s: %s", name, prev, k)
		}
		seen[k] = name
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	for _, text := range []string{basePrenex, baseTree} {
		q := parse(t, text)
		once := Canonicalize(q)
		twice := Canonicalize(once)
		if a, b := serialize(once, "po", ""), serialize(twice, "po", ""); a != b {
			t.Errorf("canonicalization not idempotent:\n once=%s\n twice=%s", a, b)
		}
		// Key canonicalizes internally, so the canonical form must key to
		// the same value as the original.
		if a, b := Key(q, "po", ""), Key(once, "po", ""); a != b {
			t.Errorf("canonical form keys differently: %s vs %s", a, b)
		}
	}
}

// TestCanonicalPermIsPermutation checks the rename table is a bijection on
// 1..MaxVar — a collision would merge distinct variables and corrupt both
// the cache key and qbf.Rename's clause normalization.
func TestCanonicalPermIsPermutation(t *testing.T) {
	for _, text := range []string{basePrenex, baseTree} {
		q := parse(t, text)
		perm := CanonicalPerm(q)
		seen := map[qbf.Var]bool{}
		for v := 1; v < len(perm); v++ {
			img := perm[v]
			if img < 1 || int(img) >= len(perm) {
				t.Fatalf("perm[%d] = %d out of range", v, img)
			}
			if seen[img] {
				t.Fatalf("perm maps two variables to %d", img)
			}
			seen[img] = true
		}
	}
}
