package gate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/result"
	"repro/internal/server"
)

// stub is a fake qbfd backend: health endpoints that honor a failure flag,
// and a swappable /solve handler. When failing, /solve kills the TCP
// connection mid-request so the gate observes a transport error (the
// passive-health signal), not a well-formed rejection.
type stub struct {
	srv     *httptest.Server
	hits    atomic.Int64
	failing atomic.Bool
	solve   atomic.Value // http.HandlerFunc
}

func okTrue(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(server.SolveResponse{Verdict: result.True.String()}) //nolint:errcheck
}

func newStub(t *testing.T) *stub {
	t.Helper()
	s := &stub{}
	s.solve.Store(http.HandlerFunc(okTrue))
	health := func(w http.ResponseWriter, r *http.Request) {
		if s.failing.Load() {
			w.WriteHeader(result.StatusUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", health)
	mux.HandleFunc("/readyz", health)
	mux.HandleFunc("/solve", func(w http.ResponseWriter, r *http.Request) {
		if s.failing.Load() {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close() //nolint:errcheck // deliberate mid-request kill
			}
			return
		}
		s.hits.Add(1)
		s.solve.Load().(http.HandlerFunc)(w, r)
	})
	s.srv = httptest.NewServer(mux)
	t.Cleanup(s.srv.Close)
	return s
}

// newGate builds a gate over the stubs with test-friendly defaults
// (hedging off, probes effectively disabled) and mounts it on an HTTP
// server. mutate tweaks the config before construction.
func newGate(t *testing.T, stubs []*stub, mutate func(*Config)) (*Gate, string) {
	t.Helper()
	cfg := Config{
		DisableHedge: true,
		Pool:         PoolConfig{ProbeInterval: time.Hour, Seed: 1},
	}
	for _, s := range stubs {
		cfg.Backends = append(cfg.Backends, s.srv.URL)
	}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(g.Stop)
	front := httptest.NewServer(g.Handler())
	t.Cleanup(front.Close)
	return g, front.URL
}

func postSolve(t *testing.T, url string, req server.SolveRequest) (int, server.SolveResponse, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	defer resp.Body.Close()
	var out server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out, resp.Header
}

// formulaN yields distinct single-clause instances (distinct canonical
// keys) for spreading load across the ring.
func formulaN(n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "p cnf %d 1\ne", n)
	for v := 1; v <= n; v++ {
		fmt.Fprintf(&sb, " %d", v)
	}
	sb.WriteString(" 0\n1 0\n")
	return sb.String()
}

func TestRoutingIsDeterministicAndRenameStable(t *testing.T) {
	stubs := []*stub{newStub(t), newStub(t), newStub(t)}
	_, url := newGate(t, stubs, nil)

	// Witness requests bypass the cache, so every send exercises routing.
	for i := 0; i < 5; i++ {
		status, _, _ := postSolve(t, url, server.SolveRequest{Formula: basePrenex, Witness: true})
		if status != result.StatusOK {
			t.Fatalf("status = %d", status)
		}
	}
	// The rename variant must land on the same backend (same canonical key).
	status, _, _ := postSolve(t, url, server.SolveRequest{Formula: baseRenamed, Witness: true})
	if status != result.StatusOK {
		t.Fatalf("variant status = %d", status)
	}
	served := 0
	for _, s := range stubs {
		if h := s.hits.Load(); h > 0 {
			served++
			if h != 6 {
				t.Errorf("owning backend saw %d hits, want all 6", h)
			}
		}
	}
	if served != 1 {
		t.Errorf("%d backends served traffic, want exactly 1", served)
	}
}

func TestFailoverToNextRingNode(t *testing.T) {
	stubs := []*stub{newStub(t), newStub(t)}
	g, url := newGate(t, stubs, nil)

	status, _, _ := postSolve(t, url, server.SolveRequest{Formula: basePrenex, Witness: true})
	if status != result.StatusOK {
		t.Fatalf("warmup status = %d", status)
	}
	var primary, other *stub
	if stubs[0].hits.Load() > 0 {
		primary, other = stubs[0], stubs[1]
	} else {
		primary, other = stubs[1], stubs[0]
	}

	// The primary now sheds everything; the gate must fail over and still
	// deliver a verdict.
	primary.solve.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(result.StatusUnavailable)
		json.NewEncoder(w).Encode(server.SolveResponse{Shed: "queue-full"}) //nolint:errcheck
	}))
	status, resp, _ := postSolve(t, url, server.SolveRequest{Formula: basePrenex, Witness: true})
	if status != result.StatusOK || resp.Verdict != result.True.String() {
		t.Fatalf("failover: status=%d verdict=%q", status, resp.Verdict)
	}
	if other.hits.Load() == 0 {
		t.Error("secondary backend never tried")
	}
	if got := g.Snapshot().Failovers; got == 0 {
		t.Error("failover counter not incremented")
	}
}

func TestLastRetryableRejectionForwardedWithRetryAfter(t *testing.T) {
	stubs := []*stub{newStub(t), newStub(t)}
	_, url := newGate(t, stubs, nil)
	for _, s := range stubs {
		s.solve.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(result.StatusTooManyRequests)
			json.NewEncoder(w).Encode(server.SolveResponse{Shed: "queue-full"}) //nolint:errcheck
		}))
	}
	status, resp, hdr := postSolve(t, url, server.SolveRequest{Formula: basePrenex, Witness: true})
	if status != result.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 forwarded", status)
	}
	if resp.Shed == "" {
		t.Error("shed reason lost in forwarding")
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("retryable forward missing Retry-After")
	}
}

func TestCacheHitAcrossRenameVariants(t *testing.T) {
	s := newStub(t)
	g, url := newGate(t, []*stub{s}, nil)

	status, resp, _ := postSolve(t, url, server.SolveRequest{Formula: basePrenex})
	if status != result.StatusOK || resp.Source != "" {
		t.Fatalf("first solve: status=%d source=%q", status, resp.Source)
	}
	// The rename/clause-permute variant must be a cache hit: no new
	// backend traffic, response flagged as cache-sourced.
	status, resp, _ = postSolve(t, url, server.SolveRequest{Formula: baseRenamed})
	if status != result.StatusOK {
		t.Fatalf("variant status = %d", status)
	}
	if resp.Source != server.SourceCache {
		t.Errorf("variant source = %q, want %q", resp.Source, server.SourceCache)
	}
	if resp.Verdict != result.True.String() {
		t.Errorf("cached verdict = %q", resp.Verdict)
	}
	if h := s.hits.Load(); h != 1 {
		t.Errorf("backend hits = %d, want 1", h)
	}
	st := g.Snapshot()
	if st.CacheHits != 1 || st.CacheEntries != 1 {
		t.Errorf("cache stats = %+v", st)
	}
}

func TestWitnessRequestsBypassCache(t *testing.T) {
	s := newStub(t)
	_, url := newGate(t, []*stub{s}, nil)
	postSolve(t, url, server.SolveRequest{Formula: basePrenex}) // fills cache
	status, resp, _ := postSolve(t, url, server.SolveRequest{Formula: basePrenex, Witness: true})
	if status != result.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if resp.Source == server.SourceCache {
		t.Error("witness request served from cache; witnesses must come from a live solve")
	}
	if h := s.hits.Load(); h != 2 {
		t.Errorf("backend hits = %d, want 2 (witness must reach the backend)", h)
	}
}

func TestDegradationServesCacheAndShedsRest(t *testing.T) {
	s := newStub(t)
	g, url := newGate(t, []*stub{s}, func(cfg *Config) {
		cfg.Pool = PoolConfig{ProbeInterval: 20 * time.Millisecond, ProbeTimeout: 200 * time.Millisecond,
			SuspectAfter: 1, EjectAfter: 2, RecoverAfter: 2, Seed: 1}
	})
	if status, _, _ := postSolve(t, url, server.SolveRequest{Formula: basePrenex}); status != result.StatusOK {
		t.Fatalf("warmup failed")
	}

	// Take the only backend down and wait for probes to eject it.
	s.failing.Store(true)
	waitFor(t, time.Second, func() bool {
		st := g.Snapshot()
		return st.Backends[0].State == "ejected"
	})

	// Total outage: the cached verdict keeps flowing, flagged as such…
	status, resp, _ := postSolve(t, url, server.SolveRequest{Formula: baseRenamed})
	if status != result.StatusOK || resp.Source != server.SourceCache {
		t.Fatalf("cached degradation: status=%d source=%q", status, resp.Source)
	}
	// …and anything uncacheable is shed with a retry hint, never hung.
	status, resp, hdr := postSolve(t, url, server.SolveRequest{Formula: basePrenex, Witness: true})
	if status != result.StatusUnavailable {
		t.Fatalf("uncacheable during outage: status = %d, want 503", status)
	}
	if resp.Shed == "" || hdr.Get("Retry-After") == "" {
		t.Errorf("outage 503 missing shed reason or Retry-After: %+v", resp)
	}

	// Recovery is hysteretic: once the backend heals, probes re-promote it
	// and traffic resumes.
	s.failing.Store(false)
	waitFor(t, time.Second, func() bool { return g.Snapshot().Backends[0].State == "healthy" })
	status, _, _ = postSolve(t, url, server.SolveRequest{Formula: basePrenex, Witness: true})
	if status != result.StatusOK {
		t.Errorf("post-recovery status = %d", status)
	}
	if g.Snapshot().Backends[0].Ejections == 0 {
		t.Error("ejection not counted")
	}
}

func TestPassiveFailureDetection(t *testing.T) {
	// Probes are off (1h interval) in both subtests: only proxied-request
	// outcomes — transport kills on /solve — can demote a backend.
	t.Run("failover masks and demotes", func(t *testing.T) {
		dead, live := newStub(t), newStub(t)
		g, url := newGate(t, []*stub{dead, live}, func(cfg *Config) {
			cfg.Pool = PoolConfig{ProbeInterval: time.Hour, SuspectAfter: 1, EjectAfter: 4, Seed: 1}
		})
		dead.failing.Store(true)
		// Spread keys so the dead backend is primary for some of them;
		// every request must still succeed via failover.
		for i := 0; i < 12; i++ {
			status, _, _ := postSolve(t, url, server.SolveRequest{Formula: formulaN(i + 1), Witness: true})
			if status != result.StatusOK {
				t.Fatalf("request %d: status = %d (failover should mask the dead backend)", i, status)
			}
		}
		if st := g.Snapshot().Backends[0].State; st == "healthy" {
			t.Errorf("dead backend still healthy after passive transport failures")
		}
	})
	t.Run("sustained failures eject", func(t *testing.T) {
		dead := newStub(t)
		g, url := newGate(t, []*stub{dead}, func(cfg *Config) {
			cfg.Pool = PoolConfig{ProbeInterval: time.Hour, SuspectAfter: 1, EjectAfter: 2, Seed: 1}
		})
		dead.failing.Store(true)
		// As the only (then suspect) backend it keeps drawing traffic, so
		// passive evidence alone walks healthy → suspect → ejected; every
		// request gets a clean shed response, never a hang.
		for i := 0; i < 2; i++ {
			status, resp, hdr := postSolve(t, url, server.SolveRequest{Formula: basePrenex, Witness: true})
			if status != result.StatusUnavailable || resp.Shed == "" || hdr.Get("Retry-After") == "" {
				t.Fatalf("request %d: status=%d shed=%q ra=%q", i, status, resp.Shed, hdr.Get("Retry-After"))
			}
		}
		if st := g.Snapshot().Backends[0].State; st != "ejected" {
			t.Fatalf("backend state = %s, want ejected from passive evidence alone", st)
		}
		// Ejected means unroutable: the gate now sheds before dialing.
		_, resp, _ := postSolve(t, url, server.SolveRequest{Formula: basePrenex, Witness: true})
		if resp.Shed != "gate-no-backends" {
			t.Errorf("shed = %q, want gate-no-backends once ejected", resp.Shed)
		}
	})
}

func TestHedgeFiresAndCancelsLoser(t *testing.T) {
	a, b := newStub(t), newStub(t)
	var first atomic.Bool
	hungCancelled := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if first.CompareAndSwap(false, true) {
			// First arrival hangs until the gate cancels it (hedge won).
			// The body must be drained first: the net/http server only
			// detects a client disconnect once the request body is read.
			io.Copy(io.Discard, r.Body) //nolint:errcheck
			<-r.Context().Done()
			close(hungCancelled)
			return
		}
		okTrue(w, r)
	})
	a.solve.Store(slow)
	b.solve.Store(slow)
	g, url := newGate(t, []*stub{a, b}, func(cfg *Config) {
		cfg.DisableHedge = false
		cfg.HedgeDelay = 5 * time.Millisecond
	})

	status, resp, _ := postSolve(t, url, server.SolveRequest{Formula: basePrenex, Witness: true})
	if status != result.StatusOK || resp.Verdict != result.True.String() {
		t.Fatalf("hedged solve: status=%d verdict=%q", status, resp.Verdict)
	}
	st := g.Snapshot()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Errorf("hedges=%d wins=%d, want 1/1", st.Hedges, st.HedgeWins)
	}
	select {
	case <-hungCancelled:
	case <-time.After(2 * time.Second):
		t.Error("losing attempt was never cancelled")
	}
}

func TestSingleflightCoalescesConcurrentVariants(t *testing.T) {
	s := newStub(t)
	arrived := make(chan struct{})
	release := make(chan struct{})
	s.solve.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(arrived)
		<-release
		okTrue(w, r)
	}))
	g, url := newGate(t, []*stub{s}, nil)

	leaderDone := make(chan server.SolveResponse, 1)
	go func() {
		_, resp, _ := postSolve(t, url, server.SolveRequest{Formula: basePrenex})
		leaderDone <- resp
	}()
	<-arrived // the leader's flight is registered before its backend call

	const followers = 7
	var wg sync.WaitGroup
	results := make([]server.SolveResponse, followers)
	statuses := make([]int, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Alternate rename variants: same canonical key either way.
			f := basePrenex
			if i%2 == 1 {
				f = baseRenamed
			}
			statuses[i], results[i], _ = postSolve(t, url, server.SolveRequest{Formula: f})
		}(i)
	}
	// Give the followers time to join the flight, then let the leader go.
	waitFor(t, 2*time.Second, func() bool {
		g.fmu.Lock()
		defer g.fmu.Unlock()
		return len(g.flights) == 1
	})
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	<-leaderDone

	for i := 0; i < followers; i++ {
		if statuses[i] != result.StatusOK || results[i].Verdict != result.True.String() {
			t.Fatalf("follower %d: status=%d verdict=%q", i, statuses[i], results[i].Verdict)
		}
	}
	if h := s.hits.Load(); h != 1 {
		t.Errorf("backend hits = %d, want 1 (flight + cache must absorb the rest)", h)
	}
	st := g.Snapshot()
	if st.Coalesced+st.CacheHits != followers {
		t.Errorf("coalesced=%d cacheHits=%d, want them to cover all %d followers",
			st.Coalesced, st.CacheHits, followers)
	}
}

func TestBadRequestsRejectedAtTheEdge(t *testing.T) {
	s := newStub(t)
	_, url := newGate(t, []*stub{s}, nil)
	cases := []server.SolveRequest{
		{Formula: "p cnf 1 1\ne 1 0\n1 0\n", Mode: "nope"},
		{Formula: "p cnf 1 1\ne 1 0\n1 0\n", Mode: "po", Strategy: "eu-au"},
		{Formula: "p cnf 1 1\ne 1 0\n1 0\n", Mode: "to", Strategy: "bogus"},
		{Formula: "not a formula"},
	}
	for i, req := range cases {
		status, resp, _ := postSolve(t, url, req)
		if status != result.StatusBadRequest || resp.Error == "" {
			t.Errorf("case %d: status=%d error=%q, want 400 with message", i, status, resp.Error)
		}
	}
	if h := s.hits.Load(); h != 0 {
		t.Errorf("invalid requests reached the backend %d times", h)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v", timeout)
}
