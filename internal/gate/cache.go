package gate

import (
	"container/list"
	"sync"

	"repro/internal/server"
)

// verdictCache is a bounded LRU over canonical request keys. Only decided
// 200 responses (TRUE/FALSE) enter it — a verdict is a semantic property
// of the canonical formula, valid regardless of which budgets or backend
// produced it — so a cached entry can be served forever, including during
// a total backend outage (the degradation contract: cached verdicts keep
// flowing, uncacheable requests get 503 + Retry-After rather than hangs).
type verdictCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent
	m   map[string]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	key  string
	resp server.SolveResponse
}

func newVerdictCache(capacity int) *verdictCache {
	return &verdictCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element, capacity)}
}

// get returns a copy of the cached response for key, flagged as
// cache-sourced, and reports whether it was present. Every lookup counts
// toward the hit/miss statistics.
func (c *verdictCache) get(key string) (server.SolveResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses++
		return server.SolveResponse{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	resp := el.Value.(*cacheEntry).resp
	resp.Source = server.SourceCache
	return resp, true
}

// put inserts (or refreshes) a decided response under key, evicting the
// least-recently-used entry past capacity. The stored copy is stripped of
// per-request fields that must not replay (witness — it is named in the
// producing request's variables, not the canonical ones — and the
// queue/solve timings).
func (c *verdictCache) put(key string, resp server.SolveResponse) {
	resp.Witness = nil
	resp.QueueMS = 0
	resp.SolveMS = 0
	resp.Source = ""
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).resp = resp
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, resp: resp})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*cacheEntry).key)
	}
}

func (c *verdictCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *verdictCache) stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
