#!/bin/sh
# check.sh — the single verification gate for this repository.
#
# Runs, in order:
#   1. go build            (everything compiles, including qbfdebug)
#   2. go vet              (stock static analysis)
#   3. gofmt check         (no unformatted files)
#   4. qbflint             (project-specific rules L1-L6, see DESIGN.md §6)
#   5. go test -race       (full suite under the race detector, including
#                          the portfolio differential and metamorphic
#                          layers and the exchange-ring stress tests)
#   6. go test -tags qbfdebug -race
#                          (solver + harness + portfolio suites with deep
#                          invariant checking, import oracle re-derivation,
#                          and the fault-injection hook live)
#   7. go test -fuzz smoke (5s fuzz of the QDIMACS/QTREE reader; the
#                          checked-in corpus replays in step 5 already)
#   8. bench_portfolio     (portfolio-vs-sequential smoke campaign; writes
#                          results/BENCH_portfolio.json and fails on any
#                          verdict disagreement)
#
# Exits non-zero at the first failing step. Run from anywhere inside the
# repository.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go build -tags qbfdebug ./..."
go build -tags qbfdebug ./...

echo "==> go vet ./..."
go vet ./...

echo "==> gofmt -l ."
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "unformatted files:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "==> qbflint ./..."
go run ./cmd/qbflint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -tags qbfdebug -race ./internal/core/... ./internal/bench/... ./internal/portfolio/..."
go test -tags qbfdebug -race ./internal/core/... ./internal/bench/... ./internal/portfolio/...

echo "==> go test -fuzz=FuzzRead -fuzztime=5s ./internal/qdimacs/"
go test -run '^$' -fuzz=FuzzRead -fuzztime=5s ./internal/qdimacs/

echo "==> bench_portfolio smoke (results/BENCH_portfolio.json)"
go run ./cmd/qbfbench -suite portfolio -scale smoke -out results

echo "All checks passed."
