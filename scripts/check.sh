#!/bin/sh
# check.sh — the single verification gate for this repository.
#
# Runs, in order:
#   1. go build            (everything compiles, including qbfdebug)
#   2. go vet              (stock static analysis)
#   3. gofmt check         (no unformatted files)
#   4. qbflint             (project-specific rules L1-L12, type-checked
#                          over every library and cmd package across all
#                          build-tag variants, see DESIGN.md §6)
#   5. qbflint -gate hotpath
#                          (L13: compiler escape analysis over the
#                          //qbf:hotpath-annotated functions in
#                          internal/telemetry and internal/core; any
#                          "escapes to heap" inside an annotated function
#                          fails; a toolchain whose -m output the parser
#                          cannot read degrades to a warning, not a
#                          failure)
#   6. go test -race       (full suite under the race detector, including
#                          the portfolio differential and metamorphic
#                          layers and the exchange-ring stress tests)
#   7. go test -tags qbfdebug -race
#                          (solver + harness + portfolio suites with deep
#                          invariant checking, import oracle re-derivation,
#                          and the fault-injection hook live)
#   8. server + gate chaos suites
#                          (the solve service and the qbfgate front tier
#                          under -tags qbfdebug -race: hundreds of
#                          concurrent requests with fault injection,
#                          breaker trips and recovery, backend kill/hang/
#                          flap storms, total-outage cache degradation,
#                          oracle agreement, drain under load — see
#                          DESIGN.md §10 and §11)
#   9. go test -fuzz smoke (5s fuzz each of the QDIMACS/QTREE reader and
#                          the service request decoder; the checked-in
#                          corpora replay in step 6 already)
#  10. tracing overhead    (builds with -tags qbfnotrace, then compares the
#                          end-to-end BenchmarkSolveTraceOverhead between
#                          the default build — hooks compiled in, tracer
#                          nil — and the qbfnotrace build; fails when the
#                          min-of-runs ratio exceeds QBF_OVERHEAD_TOLERANCE,
#                          default 1.02, i.e. 2% — see DESIGN.md §9)
#  11. bench smoke         (portfolio-vs-sequential, solve-service, and
#                          front-tier smoke campaigns; write
#                          results/BENCH_portfolio.json,
#                          results/BENCH_serve.json, and
#                          results/BENCH_gate.json and fail on any verdict
#                          disagreement, dropped request, or hitless cache)
#
# Exits non-zero at the first failing step. Run from anywhere inside the
# repository.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go build -tags qbfdebug ./..."
go build -tags qbfdebug ./...

echo "==> go vet ./..."
go vet ./...

echo "==> gofmt -l ."
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "unformatted files:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "==> qbflint ./..."
go run ./cmd/qbflint ./...

echo "==> qbflint -gate hotpath (L13 allocation gate)"
# The gcflags are pinned here so the escape-diagnostic format the parser
# expects is requested explicitly, not inherited from toolchain defaults.
go run ./cmd/qbflint -gate hotpath -gcflags '-m -m' ./internal/telemetry ./internal/core

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -tags qbfdebug -race ./internal/core/... ./internal/bench/... ./internal/portfolio/... ./internal/server/... ./internal/gate/..."
go test -tags qbfdebug -race ./internal/core/... ./internal/bench/... ./internal/portfolio/... ./internal/server/... ./internal/gate/...

echo "==> go test -fuzz=FuzzRead -fuzztime=5s ./internal/qdimacs/"
go test -run '^$' -fuzz=FuzzRead -fuzztime=5s ./internal/qdimacs/

echo "==> go test -fuzz=FuzzSolveRequest -fuzztime=5s ./internal/server/"
go test -run '^$' -fuzz=FuzzSolveRequest -fuzztime=5s ./internal/server/

echo "==> go build -tags qbfnotrace ./..."
go build -tags qbfnotrace ./...

echo "==> disabled-tracing overhead smoke (nil-tracer build vs qbfnotrace build)"
# Min of several runs filters scheduler noise; the ratio bounds what the
# compiled-in (but disabled) hooks may cost relative to a build with the
# hooks removed entirely.
overhead_min() {
    go test $1 -run '^$' -bench BenchmarkSolveTraceOverhead \
        -benchtime 0.3s -count 6 ./internal/core/ |
        awk '/BenchmarkSolveTraceOverhead/ { if (min == "" || $3 < min) min = $3 } END { print min }'
}
hooked=$(overhead_min "")
stripped=$(overhead_min "-tags qbfnotrace")
echo "    hooked   ${hooked} ns/op"
echo "    stripped ${stripped} ns/op"
echo "$hooked $stripped ${QBF_OVERHEAD_TOLERANCE:-1.02}" | awk '{
    ratio = $1 / $2
    printf "    ratio    %.4f (tolerance %.2f)\n", ratio, $3
    if (ratio > $3) { print "disabled tracing regresses past tolerance" > "/dev/stderr"; exit 1 }
}'

echo "==> bench_portfolio smoke (results/BENCH_portfolio.json)"
go run ./cmd/qbfbench -suite portfolio -scale smoke -out results

echo "==> bench_serve smoke (results/BENCH_serve.json)"
go run ./cmd/qbfbench -suite serve -scale smoke -out results

echo "==> bench_gate smoke (results/BENCH_gate.json)"
go run ./cmd/qbfbench -suite gate -scale smoke -out results

echo "All checks passed."
