#!/bin/sh
# check.sh — the single verification gate for this repository.
#
# Runs, in order:
#   1. go build            (everything compiles, including qbfdebug)
#   2. go vet              (stock static analysis)
#   3. gofmt check         (no unformatted files)
#   4. qbflint             (project-specific rules L1-L15, type-checked
#                          over every library and cmd package across all
#                          build-tag variants, see DESIGN.md §6)
#   5. qbflint -gate hotpath
#                          (L13: compiler escape analysis over the
#                          //qbf:hotpath-annotated functions in
#                          internal/telemetry and internal/core; any
#                          "escapes to heap" inside an annotated function
#                          fails; a toolchain whose -m output the parser
#                          cannot read degrades to a warning, not a
#                          failure)
#   6. go test -race       (full suite under the race detector, including
#                          the portfolio differential and metamorphic
#                          layers and the exchange-ring stress tests)
#   7. go test -tags qbfdebug -race
#                          (solver + harness + portfolio suites with deep
#                          invariant checking, import oracle re-derivation,
#                          and the fault-injection hook live)
#   8. server + gate chaos suites
#                          (the solve service and the qbfgate front tier
#                          under -tags qbfdebug -race: hundreds of
#                          concurrent requests with fault injection,
#                          breaker trips and recovery, backend kill/hang/
#                          flap storms, total-outage cache degradation,
#                          oracle agreement, drain under load — see
#                          DESIGN.md §10 and §11)
#   9. solver differential + incremental metamorphic
#                          (the strategy/mode combo agreement suites, the
#                          fixed-pool differential, the push/pop/assume
#                          metamorphic suites, and the watcher
#                          fault-injection stress under -tags qbfdebug
#                          -race with the deep checker's watcher
#                          invariants armed; any verdict disagreement
#                          against the oracle fails. The same tests also
#                          run inside steps 6-7; this step names them so a
#                          search-soundness failure is unmistakable — see
#                          DESIGN.md §7 and §12)
#  10. go test -fuzz smoke (5s fuzz each of the QDIMACS/QTREE reader, the
#                          service request decoder, the clause-arena
#                          op-stream model, and the session journal reader
#                          — arbitrary bytes must recover the longest
#                          valid record prefix, never panic; the
#                          checked-in corpora replay in step 6 already)
#  11. tracing overhead    (builds with -tags qbfnotrace, then compares the
#                          end-to-end BenchmarkSolveTraceOverhead between
#                          the default build — hooks compiled in, tracer
#                          nil — and the qbfnotrace build, alternating the
#                          two binaries run-for-run so transient load hits
#                          both minima equally; fails when the min-of-runs
#                          ratio exceeds QBF_OVERHEAD_TOLERANCE, default
#                          1.02, i.e. 2% — see DESIGN.md §9)
#  12. propagation bench baseline
#                          (BenchmarkSolve and BenchmarkPropagate on the
#                          watcher engine — the only propagation engine
#                          since the counter engine's retirement; records
#                          min-of-runs ns/op in results/BENCH_propagate.json
#                          as the baseline history)
#  13. session chaos       (the sticky-session protocol under -tags
#                          qbfdebug -race: seq races across goroutines,
#                          busy-session shedding, contained-panic
#                          retirement with breaker trips and recovery,
#                          journal recovery after in-process crash stops,
#                          and a concurrent session storm against the
#                          one-shot oracle — see DESIGN.md §12 and §13)
#  13b. crash-recovery chaos
#                          (the real qbfd binary under -tags qbfdebug
#                          -race: the fault hook SIGKILLs the daemon at a
#                          chosen journal append mid-storm, a restart over
#                          the same journal directory recovers every
#                          session, the stranded clients reconnect on
#                          their own, and all verdicts agree with the
#                          oracle ladder — see DESIGN.md §13)
#  14. bench smoke         (portfolio-vs-sequential, solve-service,
#                          front-tier, and incremental-session smoke
#                          campaigns; write results/BENCH_portfolio.json,
#                          results/BENCH_serve.json, results/BENCH_gate.json
#                          and results/BENCH_session.json and fail on any
#                          verdict disagreement, dropped request, or
#                          hitless cache. The session campaign gates that
#                          incremental solving beats repeated one-shot
#                          solving: variant-sweep decision ratio and wall
#                          speedup both above QBF_SESSION_TOLERANCE,
#                          default 1.0. The same report's durability
#                          phase prices the write-ahead journal: the
#                          journaled-service wall overhead over an
#                          identical non-durable run must stay under
#                          QBF_JOURNAL_TOLERANCE, default 2.0)
#
# Exits non-zero at the first failing step. Run from anywhere inside the
# repository.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go build -tags qbfdebug ./..."
go build -tags qbfdebug ./...

echo "==> go vet ./..."
go vet ./...

echo "==> gofmt -l ."
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "unformatted files:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "==> qbflint ./..."
go run ./cmd/qbflint ./...

echo "==> qbflint -gate hotpath (L13 allocation gate)"
# The gcflags are pinned here so the escape-diagnostic format the parser
# expects is requested explicitly, not inherited from toolchain defaults.
go run ./cmd/qbflint -gate hotpath -gcflags '-m -m' ./internal/telemetry ./internal/core

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -tags qbfdebug -race ./internal/core/... ./internal/bench/... ./internal/portfolio/... ./internal/server/... ./internal/gate/..."
go test -tags qbfdebug -race ./internal/core/... ./internal/bench/... ./internal/portfolio/... ./internal/server/... ./internal/gate/...

echo "==> solver differential + incremental metamorphic (qbfdebug, race, watcher invariants)"
go test -tags qbfdebug -race -count=1 \
    -run 'TestComboAgreement|TestFixedSuiteDifferential|TestIncremental|TestWatcherInvariantsUnderFaultInjection' \
    ./internal/core/

echo "==> go test -fuzz=FuzzRead -fuzztime=5s ./internal/qdimacs/"
go test -run '^$' -fuzz=FuzzRead -fuzztime=5s ./internal/qdimacs/

echo "==> go test -fuzz=FuzzArena -fuzztime=5s ./internal/core/"
go test -run '^$' -fuzz=FuzzArena -fuzztime=5s ./internal/core/

echo "==> go test -fuzz=FuzzSolveRequest -fuzztime=5s ./internal/server/"
go test -run '^$' -fuzz=FuzzSolveRequest -fuzztime=5s ./internal/server/

echo "==> go test -fuzz=FuzzJournal -fuzztime=5s ./internal/journal/"
go test -run '^$' -fuzz=FuzzJournal -fuzztime=5s ./internal/journal/

echo "==> go build -tags qbfnotrace ./..."
go build -tags qbfnotrace ./...

echo "==> disabled-tracing overhead smoke (nil-tracer build vs qbfnotrace build)"
# Min of several runs filters scheduler noise; the ratio bounds what the
# compiled-in (but disabled) hooks may cost relative to a build with the
# hooks removed entirely. The two builds are precompiled once and then
# alternated run-for-run: sequential per-build batches let a single load
# spike (GC of the fuzz corpus from step 10, a background compile) skew
# one whole side and fail the ratio spuriously, while interleaving spreads
# any transient over both minima equally.
ovdir=$(mktemp -d)
trap 'rm -rf "$ovdir"' EXIT
go test -c -o "$ovdir/hooked.test" ./internal/core/
go test -c -tags qbfnotrace -o "$ovdir/stripped.test" ./internal/core/
for i in 1 2 3 4 5 6; do
    for side in hooked stripped; do
        "$ovdir/$side.test" -test.run '^$' -test.bench BenchmarkSolveTraceOverhead \
            -test.benchtime 0.3s >> "$ovdir/$side.out"
    done
done
overhead_min() {
    awk '/BenchmarkSolveTraceOverhead/ { if (min == "" || $3 < min) min = $3 } END { print min }' "$1"
}
hooked=$(overhead_min "$ovdir/hooked.out")
stripped=$(overhead_min "$ovdir/stripped.out")
echo "    hooked   ${hooked} ns/op"
echo "    stripped ${stripped} ns/op"
echo "$hooked $stripped ${QBF_OVERHEAD_TOLERANCE:-1.02}" | awk '{
    ratio = $1 / $2
    printf "    ratio    %.4f (tolerance %.2f)\n", ratio, $3
    if (ratio > $3) { print "disabled tracing regresses past tolerance" > "/dev/stderr"; exit 1 }
}'

echo "==> propagation bench baseline (results/BENCH_propagate.json)"
# Min-of-runs on the propagation-bound smoke pool (end-to-end
# BenchmarkSolve) and on the isolated fixpoint loop (BenchmarkPropagate).
# Since the counter engine's retirement there is no in-tree engine to race,
# so this step records the watcher baseline instead of gating a ratio;
# compare against the checked-in history when touching the hot path.
prop_out=$(go test -run '^$' -bench '^(BenchmarkSolve|BenchmarkPropagate)$' \
    -benchtime 0.3s -count 4 ./internal/core/)
prop_min() {
    echo "$prop_out" |
        awk -v name="$1" 'index($1, name) == 1 { if (min == "" || $3 < min) min = $3 } END { print min }'
}
sw=$(prop_min "BenchmarkSolve")
pw=$(prop_min "BenchmarkPropagate")
echo "    solve      ${sw} ns/op"
echo "    propagate  ${pw} ns/op"
mkdir -p results
echo "$sw $pw" | awk '{
    printf "{\n  \"bench\": \"propagate\",\n  \"pool\": \"php6+php7 smoke\",\n  \"solve_ns_op\": %s,\n  \"propagate_ns_op\": %s\n}\n", $1, $2 > "results/BENCH_propagate.json"
}'

echo "==> session chaos (qbfdebug, race)"
go test -tags qbfdebug -race -count=1 -run 'TestSession|TestJournal|TestDrainTombstones' \
    ./internal/server/ ./internal/server/client/

echo "==> crash-recovery chaos (qbfdebug, race, real daemon, SIGKILL mid-storm)"
go test -tags qbfdebug -race -count=1 -run 'TestChaosCrashRecovery|TestDaemonJournalRecovery' \
    ./cmd/qbfd/

echo "==> bench_portfolio smoke (results/BENCH_portfolio.json)"
go run ./cmd/qbfbench -suite portfolio -scale smoke -out results

echo "==> bench_serve smoke (results/BENCH_serve.json)"
go run ./cmd/qbfbench -suite serve -scale smoke -out results

echo "==> bench_gate smoke (results/BENCH_gate.json)"
go run ./cmd/qbfbench -suite gate -scale smoke -out results

echo "==> bench_session smoke (results/BENCH_session.json)"
# The suite itself fails on any verdict disagreement or a non-positive
# decision-count advantage; the wall-clock speedup gate lives here so its
# tolerance is tunable without a rebuild. Both sides take the min of the
# suite's repetitions, so QBF_SESSION_TOLERANCE (default 1.0: incremental
# must simply win) only needs headroom for machine-level noise.
go run ./cmd/qbfbench -suite session -scale smoke -out results
awk -v tol="${QBF_SESSION_TOLERANCE:-1.0}" '
    /"variant_wall_speedup"/ { gsub(/[,"]/, ""); speedup = $2 }
    /"variant_decision_ratio"/ { gsub(/[,"]/, ""); ratio = $2 }
    END {
        printf "    incremental vs one-shot: %.2fx decisions, %.2fx wall (tolerance %.2fx)\n", ratio, speedup, tol
        if (speedup + 0 < tol + 0 || ratio + 0 < tol + 0) {
            print "incremental sessions do not beat one-shot solving" > "/dev/stderr"
            exit 1
        }
    }' results/BENCH_session.json
# Durability gate: crash tolerance may cost a bounded factor of session
# wall time (buffered appends under the interval fsync policy), never a
# cliff. Both sides are min-of-reps over the same loopback workload.
awk -v tol="${QBF_JOURNAL_TOLERANCE:-2.0}" '
    /"journal_overhead"/ { gsub(/[,"]/, ""); overhead = $2 }
    END {
        printf "    journal overhead: %.2fx wall (tolerance %.2fx)\n", overhead, tol
        if (overhead + 0 > tol + 0) {
            print "write-ahead journal overhead exceeds tolerance" > "/dev/stderr"
            exit 1
        }
    }' results/BENCH_session.json

echo "All checks passed."
