#!/bin/sh
# check.sh — the single verification gate for this repository.
#
# Runs, in order:
#   1. go build            (everything compiles, including qbfdebug)
#   2. go vet              (stock static analysis)
#   3. gofmt check         (no unformatted files)
#   4. qbflint             (project-specific rules L1-L5, see DESIGN.md §6)
#   5. go test -race       (full suite under the race detector)
#   6. go test -tags qbfdebug ./internal/core/... ./internal/bench/...
#                          (solver + harness suites with deep invariant
#                          checking and the fault-injection hook live)
#   7. go test -fuzz smoke (5s fuzz of the QDIMACS/QTREE reader; the
#                          checked-in corpus replays in step 5 already)
#
# Exits non-zero at the first failing step. Run from anywhere inside the
# repository.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go build -tags qbfdebug ./..."
go build -tags qbfdebug ./...

echo "==> go vet ./..."
go vet ./...

echo "==> gofmt -l ."
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "unformatted files:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "==> qbflint ./..."
go run ./cmd/qbflint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -tags qbfdebug ./internal/core/... ./internal/bench/..."
go test -tags qbfdebug ./internal/core/... ./internal/bench/...

echo "==> go test -fuzz=FuzzRead -fuzztime=5s ./internal/qdimacs/"
go test -run '^$' -fuzz=FuzzRead -fuzztime=5s ./internal/qdimacs/

echo "All checks passed."
