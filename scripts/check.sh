#!/bin/sh
# check.sh — the single verification gate for this repository.
#
# Runs, in order:
#   1. go build            (everything compiles, including qbfdebug)
#   2. go vet              (stock static analysis)
#   3. gofmt check         (no unformatted files)
#   4. qbflint             (project-specific rules L1-L12, type-checked
#                          over every library and cmd package across all
#                          build-tag variants, see DESIGN.md §6)
#   5. qbflint -gate hotpath
#                          (L13: compiler escape analysis over the
#                          //qbf:hotpath-annotated functions in
#                          internal/telemetry and internal/core; any
#                          "escapes to heap" inside an annotated function
#                          fails; a toolchain whose -m output the parser
#                          cannot read degrades to a warning, not a
#                          failure)
#   6. go test -race       (full suite under the race detector, including
#                          the portfolio differential and metamorphic
#                          layers and the exchange-ring stress tests)
#   7. go test -tags qbfdebug -race
#                          (solver + harness + portfolio suites with deep
#                          invariant checking, import oracle re-derivation,
#                          and the fault-injection hook live)
#   8. server + gate chaos suites
#                          (the solve service and the qbfgate front tier
#                          under -tags qbfdebug -race: hundreds of
#                          concurrent requests with fault injection,
#                          breaker trips and recovery, backend kill/hang/
#                          flap storms, total-outage cache degradation,
#                          oracle agreement, drain under load — see
#                          DESIGN.md §10 and §11)
#   9. cross-engine differential
#                          (the watched-literal and occurrence-counter
#                          propagation engines solve the same 250+ random
#                          and adversarial instances — plus the watcher
#                          fault-injection stress — under -tags qbfdebug
#                          -race, with the deep checker's watcher
#                          invariants armed; any verdict disagreement
#                          between the engines or against the oracle
#                          fails. The same tests also run inside steps 6-7;
#                          this step names them so a propagation-soundness
#                          failure is unmistakable — see DESIGN.md §7)
#  10. go test -fuzz smoke (5s fuzz each of the QDIMACS/QTREE reader, the
#                          service request decoder, and the clause-arena
#                          op-stream model; the checked-in corpora replay
#                          in step 6 already)
#  11. tracing overhead    (builds with -tags qbfnotrace, then compares the
#                          end-to-end BenchmarkSolveTraceOverhead between
#                          the default build — hooks compiled in, tracer
#                          nil — and the qbfnotrace build, alternating the
#                          two binaries run-for-run so transient load hits
#                          both minima equally; fails when the min-of-runs
#                          ratio exceeds QBF_OVERHEAD_TOLERANCE, default
#                          1.02, i.e. 2% — see DESIGN.md §9)
#  12. propagation bench gate
#                          (BenchmarkSolve and BenchmarkPropagate per
#                          engine; writes results/BENCH_propagate.json and
#                          fails when the watcher engine's end-to-end
#                          speedup over the counter engine drops below
#                          QBF_PROPAGATE_TOLERANCE, default 1.0)
#  13. bench smoke         (portfolio-vs-sequential, solve-service, and
#                          front-tier smoke campaigns; write
#                          results/BENCH_portfolio.json,
#                          results/BENCH_serve.json, and
#                          results/BENCH_gate.json and fail on any verdict
#                          disagreement, dropped request, or hitless cache)
#
# Exits non-zero at the first failing step. Run from anywhere inside the
# repository.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go build -tags qbfdebug ./..."
go build -tags qbfdebug ./...

echo "==> go vet ./..."
go vet ./...

echo "==> gofmt -l ."
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "unformatted files:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "==> qbflint ./..."
go run ./cmd/qbflint ./...

echo "==> qbflint -gate hotpath (L13 allocation gate)"
# The gcflags are pinned here so the escape-diagnostic format the parser
# expects is requested explicitly, not inherited from toolchain defaults.
go run ./cmd/qbflint -gate hotpath -gcflags '-m -m' ./internal/telemetry ./internal/core

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -tags qbfdebug -race ./internal/core/... ./internal/bench/... ./internal/portfolio/... ./internal/server/... ./internal/gate/..."
go test -tags qbfdebug -race ./internal/core/... ./internal/bench/... ./internal/portfolio/... ./internal/server/... ./internal/gate/...

echo "==> cross-engine propagation differential (qbfdebug, race, watcher invariants)"
go test -tags qbfdebug -race -count=1 \
    -run 'TestCrossEngine|TestWatcherInvariantsUnderFaultInjection' ./internal/core/

echo "==> go test -fuzz=FuzzRead -fuzztime=5s ./internal/qdimacs/"
go test -run '^$' -fuzz=FuzzRead -fuzztime=5s ./internal/qdimacs/

echo "==> go test -fuzz=FuzzArena -fuzztime=5s ./internal/core/"
go test -run '^$' -fuzz=FuzzArena -fuzztime=5s ./internal/core/

echo "==> go test -fuzz=FuzzSolveRequest -fuzztime=5s ./internal/server/"
go test -run '^$' -fuzz=FuzzSolveRequest -fuzztime=5s ./internal/server/

echo "==> go build -tags qbfnotrace ./..."
go build -tags qbfnotrace ./...

echo "==> disabled-tracing overhead smoke (nil-tracer build vs qbfnotrace build)"
# Min of several runs filters scheduler noise; the ratio bounds what the
# compiled-in (but disabled) hooks may cost relative to a build with the
# hooks removed entirely. The two builds are precompiled once and then
# alternated run-for-run: sequential per-build batches let a single load
# spike (GC of the fuzz corpus from step 10, a background compile) skew
# one whole side and fail the ratio spuriously, while interleaving spreads
# any transient over both minima equally.
ovdir=$(mktemp -d)
trap 'rm -rf "$ovdir"' EXIT
go test -c -o "$ovdir/hooked.test" ./internal/core/
go test -c -tags qbfnotrace -o "$ovdir/stripped.test" ./internal/core/
for i in 1 2 3 4 5 6; do
    for side in hooked stripped; do
        "$ovdir/$side.test" -test.run '^$' -test.bench BenchmarkSolveTraceOverhead \
            -test.benchtime 0.3s >> "$ovdir/$side.out"
    done
done
overhead_min() {
    awk '/BenchmarkSolveTraceOverhead/ { if (min == "" || $3 < min) min = $3 } END { print min }' "$1"
}
hooked=$(overhead_min "$ovdir/hooked.out")
stripped=$(overhead_min "$ovdir/stripped.out")
echo "    hooked   ${hooked} ns/op"
echo "    stripped ${stripped} ns/op"
echo "$hooked $stripped ${QBF_OVERHEAD_TOLERANCE:-1.02}" | awk '{
    ratio = $1 / $2
    printf "    ratio    %.4f (tolerance %.2f)\n", ratio, $3
    if (ratio > $3) { print "disabled tracing regresses past tolerance" > "/dev/stderr"; exit 1 }
}'

echo "==> propagation engine bench gate (results/BENCH_propagate.json)"
# Min-of-runs per engine on the propagation-bound smoke pool (end-to-end
# BenchmarkSolve) and on the isolated fixpoint loop (BenchmarkPropagate).
# The end-to-end ratio is the gate: the watcher engine regressing past
# QBF_PROPAGATE_TOLERANCE (default 1.0, i.e. "never slower than the
# counter engine it replaced") fails the build.
prop_out=$(go test -run '^$' -bench '^(BenchmarkSolve|BenchmarkPropagate)$' \
    -benchtime 0.3s -count 4 ./internal/core/)
prop_min() {
    echo "$prop_out" |
        awk -v name="$1" 'index($1, name) == 1 { if (min == "" || $3 < min) min = $3 } END { print min }'
}
sw=$(prop_min "BenchmarkSolve/watched")
sc=$(prop_min "BenchmarkSolve/counters")
pw=$(prop_min "BenchmarkPropagate/watched")
pc=$(prop_min "BenchmarkPropagate/counters")
echo "    solve      watched ${sw} ns/op, counters ${sc} ns/op"
echo "    propagate  watched ${pw} ns/op, counters ${pc} ns/op"
mkdir -p results
echo "$sw $sc $pw $pc ${QBF_PROPAGATE_TOLERANCE:-1.0}" | awk '{
    solve_speedup = $2 / $1
    prop_speedup = $4 / $3
    printf "    speedup    solve %.2fx, fixpoint loop %.2fx (tolerance %.2fx)\n", solve_speedup, prop_speedup, $5
    printf "{\n  \"bench\": \"propagate\",\n  \"pool\": \"php6+php7 smoke\",\n  \"solve_watched_ns_op\": %s,\n  \"solve_counters_ns_op\": %s,\n  \"solve_speedup\": %.4f,\n  \"propagate_watched_ns_op\": %s,\n  \"propagate_counters_ns_op\": %s,\n  \"propagate_speedup\": %.4f,\n  \"tolerance\": %.2f\n}\n", $1, $2, solve_speedup, $3, $4, prop_speedup, $5 > "results/BENCH_propagate.json"
    if (solve_speedup < $5) { print "watcher engine regresses past tolerance" > "/dev/stderr"; exit 1 }
}'

echo "==> bench_portfolio smoke (results/BENCH_portfolio.json)"
go run ./cmd/qbfbench -suite portfolio -scale smoke -out results

echo "==> bench_serve smoke (results/BENCH_serve.json)"
go run ./cmd/qbfbench -suite serve -scale smoke -out results

echo "==> bench_gate smoke (results/BENCH_gate.json)"
go run ./cmd/qbfbench -suite gate -scale smoke -out results

echo "All checks passed."
