#!/bin/sh
# check.sh — the single verification gate for this repository.
#
# Runs, in order:
#   1. go build            (everything compiles, including qbfdebug)
#   2. go vet              (stock static analysis)
#   3. gofmt check         (no unformatted files)
#   4. qbflint             (project-specific rules L1-L4, see DESIGN.md §6)
#   5. go test -race       (full suite under the race detector)
#   6. go test -tags qbfdebug ./internal/core/...
#                          (solver suite with deep invariant checking live)
#
# Exits non-zero at the first failing step. Run from anywhere inside the
# repository.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go build -tags qbfdebug ./..."
go build -tags qbfdebug ./...

echo "==> go vet ./..."
go vet ./...

echo "==> gofmt -l ."
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "unformatted files:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "==> qbflint ./..."
go run ./cmd/qbflint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -tags qbfdebug ./internal/core/..."
go test -tags qbfdebug ./internal/core/...

echo "All checks passed."
