// Package repro is a from-scratch Go reproduction of Giunchiglia, Narizzano
// and Tacchella, "Quantifier structure in search based procedures for QBFs"
// (DATE 2006): a search-based QBF solver that handles non-prenex quantifier
// structure (QUBE(PO)) next to the classic total-order configuration
// (QUBE(TO)), the four prenexing strategies of Egly et al., miniscoping,
// and the paper's four workloads (nested counterfactuals, web-service
// composition games, circuit-diameter QBFs, QBFEVAL-style instances).
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the measured
// reproduction of every table and figure, and the package documentation
// under internal/ for the individual components. The benchmarks in
// bench_test.go regenerate each experiment at smoke scale; cmd/qbfbench
// runs them at configurable scale.
package repro
